open Echo_tensor

type t =
  | Placeholder
  | Variable
  | Zeros
  | ConstFill of float
  | DropoutMask of { p : float; seed : int }
  | Neg
  | Scale of float
  | AddScalar of float
  | PowConst of float
  | Sigmoid
  | Tanh
  | Relu
  | Exp
  | Log
  | Sqrt
  | Sq
  | Recip
  | Sign
  | Add
  | Sub
  | Mul
  | Div
  | Matmul of { trans_a : bool; trans_b : bool }
  | AddBias
  | ScaleBy
  | Slice of { axis : int; lo : int; hi : int }
  | PadSlice of { axis : int; lo : int; full : int }
  | Concat of { axis : int }
  | Reshape of Shape.t
  | Transpose2d
  | ReduceSum of { axis : int; keepdims : bool }
  | ReduceMean of { axis : int; keepdims : bool }
  | BroadcastAxis of { axis : int; n : int }
  | Softmax
  | LogSoftmax
  | CrossEntropy
  | CrossEntropyGrad
  | Embedding
  | EmbeddingGrad of { vocab : int }
  | Conv2d of { stride : int; pad : int }
  | Conv2dGradInput of { stride : int; pad : int; input_shape : Shape.t }
  | Conv2dGradKernel of { stride : int; pad : int; kernel_shape : Shape.t }

let arity = function
  | Placeholder | Variable | Zeros | ConstFill _ | DropoutMask _ -> Some 0
  | Neg | Scale _ | AddScalar _ | PowConst _ | Sigmoid | Tanh | Relu | Exp | Log
  | Sqrt | Sq | Recip | Sign | Reshape _ | Transpose2d | Slice _ | PadSlice _
  | ReduceSum _ | ReduceMean _ | BroadcastAxis _ | Softmax | LogSoftmax ->
    Some 1
  | Add | Sub | Mul | Div | Matmul _ | AddBias | ScaleBy | CrossEntropy
  | CrossEntropyGrad | Embedding | EmbeddingGrad _ | Conv2d _
  | Conv2dGradInput _ | Conv2dGradKernel _ ->
    Some 2
  | Concat _ -> None

let is_leaf op = arity op = Some 0
let is_pure (_ : t) = true

let is_cheap = function
  | Matmul _ | Conv2d _ | Conv2dGradInput _ | Conv2dGradKernel _ -> false
  | Placeholder | Variable | Zeros | ConstFill _ | DropoutMask _ | Neg | Scale _
  | AddScalar _ | PowConst _ | Sigmoid | Tanh | Relu | Exp | Log | Sqrt | Sq
  | Recip | Sign | Add | Sub | Mul | Div | AddBias | ScaleBy | Slice _
  | PadSlice _ | Concat _ | Reshape _ | Transpose2d | ReduceSum _ | ReduceMean _
  | BroadcastAxis _ | Softmax | LogSoftmax | CrossEntropy | CrossEntropyGrad
  | Embedding | EmbeddingGrad _ ->
    true

let is_recomputable op =
  is_pure op
  &&
  match op with
  | Placeholder | Variable -> false
  | Zeros | ConstFill _ | DropoutMask _ | Neg | Scale _ | AddScalar _
  | PowConst _ | Sigmoid | Tanh | Relu | Exp | Log | Sqrt | Sq | Recip | Sign
  | Add | Sub | Mul | Div | Matmul _ | AddBias | ScaleBy | Slice _ | PadSlice _
  | Concat _ | Reshape _ | Transpose2d | ReduceSum _ | ReduceMean _
  | BroadcastAxis _ | Softmax | LogSoftmax | CrossEntropy | CrossEntropyGrad
  | Embedding | EmbeddingGrad _ | Conv2d _ | Conv2dGradInput _
  | Conv2dGradKernel _ ->
    true

let shape_error op_name msg =
  invalid_arg (Printf.sprintf "Op.infer_shape(%s): %s" op_name msg)

let unary_name = function
  | Neg -> "Neg"
  | Scale _ -> "Scale"
  | AddScalar _ -> "AddScalar"
  | PowConst _ -> "PowConst"
  | Sigmoid -> "Sigmoid"
  | Tanh -> "Tanh"
  | Relu -> "Relu"
  | Exp -> "Exp"
  | Log -> "Log"
  | Sqrt -> "Sqrt"
  | Sq -> "Sq"
  | Recip -> "Recip"
  | Sign -> "Sign"
  | _ -> "unary"

let to_string = function
  | Placeholder -> "Placeholder"
  | Variable -> "Variable"
  | Zeros -> "Zeros"
  | ConstFill v -> Printf.sprintf "ConstFill(%g)" v
  | DropoutMask { p; seed } -> Printf.sprintf "DropoutMask(p=%g,seed=%d)" p seed
  | (Neg | Scale _ | AddScalar _ | PowConst _ | Sigmoid | Tanh | Relu | Exp
    | Log | Sqrt | Sq | Recip | Sign) as op -> (
    match op with
    | Scale k -> Printf.sprintf "Scale(%g)" k
    | AddScalar k -> Printf.sprintf "AddScalar(%g)" k
    | PowConst p -> Printf.sprintf "PowConst(%g)" p
    | other -> unary_name other)
  | Add -> "Add"
  | Sub -> "Sub"
  | Mul -> "Mul"
  | Div -> "Div"
  | Matmul { trans_a; trans_b } ->
    Printf.sprintf "Matmul(%s,%s)"
      (if trans_a then "T" else "N")
      (if trans_b then "T" else "N")
  | AddBias -> "AddBias"
  | ScaleBy -> "ScaleBy"
  | Slice { axis; lo; hi } -> Printf.sprintf "Slice(ax=%d,[%d,%d))" axis lo hi
  | PadSlice { axis; lo; full } ->
    Printf.sprintf "PadSlice(ax=%d,lo=%d,full=%d)" axis lo full
  | Concat { axis } -> Printf.sprintf "Concat(ax=%d)" axis
  | Reshape s -> Printf.sprintf "Reshape(%s)" (Shape.to_string s)
  | Transpose2d -> "Transpose2d"
  | ReduceSum { axis; keepdims } ->
    Printf.sprintf "ReduceSum(ax=%d,keep=%b)" axis keepdims
  | ReduceMean { axis; keepdims } ->
    Printf.sprintf "ReduceMean(ax=%d,keep=%b)" axis keepdims
  | BroadcastAxis { axis; n } -> Printf.sprintf "BroadcastAxis(ax=%d,n=%d)" axis n
  | Softmax -> "Softmax"
  | LogSoftmax -> "LogSoftmax"
  | CrossEntropy -> "CrossEntropy"
  | CrossEntropyGrad -> "CrossEntropyGrad"
  | Embedding -> "Embedding"
  | EmbeddingGrad { vocab } -> Printf.sprintf "EmbeddingGrad(V=%d)" vocab
  | Conv2d { stride; pad } -> Printf.sprintf "Conv2d(s=%d,p=%d)" stride pad
  | Conv2dGradInput { stride; pad; _ } ->
    Printf.sprintf "Conv2dGradInput(s=%d,p=%d)" stride pad
  | Conv2dGradKernel { stride; pad; _ } ->
    Printf.sprintf "Conv2dGradKernel(s=%d,p=%d)" stride pad

let pp fmt op = Format.pp_print_string fmt (to_string op)

let expect_rank name r s =
  if Shape.rank s <> r then
    shape_error name (Printf.sprintf "expected rank %d, got %s" r (Shape.to_string s))

let expect_equal name a b =
  if not (Shape.equal a b) then
    shape_error name
      (Printf.sprintf "shape mismatch %s vs %s" (Shape.to_string a) (Shape.to_string b))

let infer_shape op input_shapes explicit =
  let name = to_string op in
  let nargs = List.length input_shapes in
  (match arity op with
  | Some n when n <> nargs ->
    shape_error name (Printf.sprintf "expected %d inputs, got %d" n nargs)
  | Some _ | None -> ());
  (match (explicit, is_leaf op) with
  | Some _, false -> shape_error name "explicit shape given for a non-leaf"
  | None, true -> shape_error name "leaf requires an explicit shape"
  | _ -> ());
  match (op, input_shapes) with
  | (Placeholder | Variable | Zeros | ConstFill _ | DropoutMask _), [] -> (
    match explicit with
    | Some s ->
      Shape.validate s;
      s
    | None -> assert false)
  | ( ( Neg | Scale _ | AddScalar _ | PowConst _ | Sigmoid | Tanh | Relu | Exp
      | Log | Sqrt | Sq | Recip | Sign ),
      [ s ] ) ->
    s
  | (Add | Sub | Mul | Div), [ a; b ] ->
    expect_equal name a b;
    a
  | Matmul { trans_a; trans_b }, [ a; b ] ->
    expect_rank name 2 a;
    expect_rank name 2 b;
    let m, k = if trans_a then (a.(1), a.(0)) else (a.(0), a.(1)) in
    let k', n = if trans_b then (b.(1), b.(0)) else (b.(0), b.(1)) in
    if k <> k' then
      shape_error name
        (Printf.sprintf "inner dims %d vs %d (%s x %s)" k k' (Shape.to_string a)
           (Shape.to_string b));
    [| m; n |]
  | AddBias, [ m; b ] ->
    expect_rank name 2 m;
    expect_rank name 1 b;
    if m.(1) <> b.(0) then shape_error name "bias length mismatch";
    m
  | ScaleBy, [ x; s ] ->
    if Shape.rank s <> 0 then shape_error name "second input must be a scalar";
    x
  | Slice { axis; lo; hi }, [ s ] -> Shape.slice_result ~axis ~lo ~hi s
  | PadSlice { axis; lo; full }, [ s ] ->
    if axis < 0 || axis >= Shape.rank s then shape_error name "axis out of bounds";
    if lo < 0 || lo + s.(axis) > full then shape_error name "slice does not fit";
    Array.mapi (fun i d -> if i = axis then full else d) s
  | Concat { axis }, first :: rest ->
    List.fold_left (fun acc s -> Shape.concat_result ~axis acc s) first rest
  | Concat _, [] -> shape_error name "empty input list"
  | Reshape target, [ s ] ->
    if Shape.numel target <> Shape.numel s then
      shape_error name
        (Printf.sprintf "cannot reshape %s to %s" (Shape.to_string s)
           (Shape.to_string target));
    target
  | Transpose2d, [ s ] ->
    expect_rank name 2 s;
    [| s.(1); s.(0) |]
  | (ReduceSum { axis; keepdims } | ReduceMean { axis; keepdims }), [ s ] ->
    if axis < 0 || axis >= Shape.rank s then shape_error name "axis out of bounds";
    if keepdims then Array.mapi (fun i d -> if i = axis then 1 else d) s
    else if Shape.rank s = 1 then Shape.scalar
    else begin
      let out = Array.make (Shape.rank s - 1) 0 in
      let j = ref 0 in
      Array.iteri
        (fun i d ->
          if i <> axis then begin
            out.(!j) <- d;
            incr j
          end)
        s;
      out
    end
  | BroadcastAxis { axis; n }, [ s ] ->
    if axis < 0 || axis >= Shape.rank s then shape_error name "axis out of bounds";
    if s.(axis) <> 1 then shape_error name "broadcast axis dim must be 1";
    Array.mapi (fun i d -> if i = axis then n else d) s
  | (Softmax | LogSoftmax), [ s ] ->
    if Shape.rank s < 1 then shape_error name "rank must be >= 1";
    s
  | CrossEntropy, [ logits; labels ] ->
    expect_rank name 2 logits;
    expect_rank name 1 labels;
    if logits.(0) <> labels.(0) then shape_error name "batch mismatch";
    Shape.scalar
  | CrossEntropyGrad, [ logits; labels ] ->
    expect_rank name 2 logits;
    expect_rank name 1 labels;
    if logits.(0) <> labels.(0) then shape_error name "batch mismatch";
    logits
  | Embedding, [ table; ids ] ->
    expect_rank name 2 table;
    expect_rank name 1 ids;
    [| ids.(0); table.(1) |]
  | EmbeddingGrad { vocab }, [ ids; grad_out ] ->
    expect_rank name 1 ids;
    expect_rank name 2 grad_out;
    if grad_out.(0) <> ids.(0) then shape_error name "batch mismatch";
    [| vocab; grad_out.(1) |]
  | Conv2d { stride; pad }, [ input; kernel ] ->
    expect_rank name 4 input;
    expect_rank name 4 kernel;
    if input.(1) <> kernel.(1) then shape_error name "channel mismatch";
    let out d k = ((d + (2 * pad) - k) / stride) + 1 in
    let oh = out input.(2) kernel.(2) and ow = out input.(3) kernel.(3) in
    if oh < 1 || ow < 1 then shape_error name "output collapses to zero";
    [| input.(0); kernel.(0); oh; ow |]
  | Conv2dGradInput { input_shape; _ }, [ kernel; grad_out ] ->
    expect_rank name 4 kernel;
    expect_rank name 4 grad_out;
    input_shape
  | Conv2dGradKernel { kernel_shape; _ }, [ input; grad_out ] ->
    expect_rank name 4 input;
    expect_rank name 4 grad_out;
    kernel_shape
  | _, _ -> shape_error name "wrong number of inputs"
