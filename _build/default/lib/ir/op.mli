(** The operator vocabulary of the dataflow IR.

    Every tensor program in this repository — forward models, the symbolic
    backward pass produced by [echo_autodiff], and the recomputation clones
    inserted by the Echo pass — is a DAG of these operators. Gradient rules
    are expressed in the same vocabulary wherever mathematically possible so
    that the backward graph consumes genuine forward feature maps; the few
    fused gradient operators ([CrossEntropyGrad], [EmbeddingGrad], the conv
    gradients) exist because their math does not decompose usefully. *)

open Echo_tensor

type t =
  (* Leaves *)
  | Placeholder  (** runtime input (data, labels); shape fixed at creation *)
  | Variable  (** trainable parameter; persistent across iterations *)
  | Zeros  (** constant zero tensor *)
  | ConstFill of float  (** constant tensor filled with one value *)
  | DropoutMask of { p : float; seed : int }
      (** inverted-dropout mask, deterministic in [seed]; recomputable *)
  (* Elementwise, unary *)
  | Neg
  | Scale of float
  | AddScalar of float
  | PowConst of float
  | Sigmoid
  | Tanh
  | Relu
  | Exp
  | Log
  | Sqrt
  | Sq
  | Recip
  | Sign
  (* Elementwise, binary (identical shapes) *)
  | Add
  | Sub
  | Mul
  | Div
  (* Linear algebra *)
  | Matmul of { trans_a : bool; trans_b : bool }
  | AddBias  (** 2-D matrix + 1-D row bias *)
  | ScaleBy  (** (tensor, scalar tensor) -> tensor; elementwise scaling *)
  (* Shape manipulation *)
  | Slice of { axis : int; lo : int; hi : int }
  | PadSlice of { axis : int; lo : int; full : int }  (** gradient of Slice *)
  | Concat of { axis : int }  (** n-ary *)
  | Reshape of Shape.t
  | Transpose2d
  (* Reductions / broadcast *)
  | ReduceSum of { axis : int; keepdims : bool }
  | ReduceMean of { axis : int; keepdims : bool }
  | BroadcastAxis of { axis : int; n : int }
  (* Neural-network kernels *)
  | Softmax  (** over the last axis *)
  | LogSoftmax
  | CrossEntropy  (** (logits, labels) -> scalar mean NLL *)
  | CrossEntropyGrad  (** (logits, labels) -> d loss/d logits *)
  | Embedding  (** (table, ids) -> gathered rows *)
  | EmbeddingGrad of { vocab : int }  (** (ids, grad_out) -> table gradient *)
  | Conv2d of { stride : int; pad : int }
  | Conv2dGradInput of { stride : int; pad : int; input_shape : Shape.t }
  | Conv2dGradKernel of { stride : int; pad : int; kernel_shape : Shape.t }

val arity : t -> int option
(** Expected number of inputs; [None] for variadic ([Concat]). *)

val is_leaf : t -> bool
(** True for operators with no tensor inputs. *)

val is_pure : t -> bool
(** True when re-executing the operator on the same inputs yields bitwise
    identical results. Everything here is pure — including [DropoutMask],
    which is seeded — but the predicate is the single point of truth the
    recomputation pass consults. *)

val is_cheap : t -> bool
(** True for operators whose cost is elementwise/launch-bound (no GEMM or
    convolution work): the fast-path recomputation candidates. *)

val is_recomputable : t -> bool
(** True when the Echo pass may clone this node into the backward region:
    pure and not a runtime input or a trainable parameter. *)

val infer_shape : t -> Shape.t list -> Shape.t option -> Shape.t
(** [infer_shape op input_shapes explicit] computes the output shape.
    [explicit] supplies the shape for leaves ([Placeholder], [Variable],
    [Zeros], [ConstFill], [DropoutMask]); it must be [None] elsewhere.
    @raise Invalid_argument on rank/dimension errors. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
