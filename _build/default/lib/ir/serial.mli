(** Graph serialization: a stable, line-oriented text format so compiled
    (and rewritten) training graphs can be saved, diffed and reloaded by
    tools. Round-tripping preserves structure, names, regions and scheduling
    hints — a reloaded graph schedules, plans and evaluates identically
    (node ids are reassigned; everything order-relevant is written in
    schedule order so tie-breaking is stable). *)

exception Parse_error of string
(** Carries the offending line and reason. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val to_file : Graph.t -> string -> unit
val of_file : string -> Graph.t
