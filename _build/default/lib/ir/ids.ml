(* Integer-keyed sets and maps over node identifiers. *)

module Set = Stdlib.Set.Make (Int)
module Map = Stdlib.Map.Make (Int)
