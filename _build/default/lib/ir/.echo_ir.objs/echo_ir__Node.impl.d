lib/ir/node.ml: Echo_tensor Format Int List Op Option Printf Shape
