lib/ir/ids.ml: Int Stdlib
