lib/ir/serial.ml: Array Buffer Echo_tensor Graph Hashtbl List Node Op Printf Shape String
