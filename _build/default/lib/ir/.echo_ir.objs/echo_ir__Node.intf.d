lib/ir/node.mli: Echo_tensor Format Op Shape
