lib/ir/op.ml: Array Echo_tensor Format List Printf Shape
