lib/ir/serial.mli: Graph
