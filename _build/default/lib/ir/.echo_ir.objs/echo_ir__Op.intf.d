lib/ir/op.mli: Echo_tensor Format Shape
