lib/ir/graph.mli: Format Node
