lib/ir/graph.ml: Buffer Echo_tensor Format Hashtbl Ids List Node Op Printf Stdlib
