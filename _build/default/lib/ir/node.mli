(** Immutable dataflow nodes.

    A node owns a unique process-wide integer id; ids increase in creation
    order, which the scheduler exploits to produce a deterministic
    program-order execution plan. Output shapes are inferred eagerly at
    construction, so an ill-shaped graph cannot be built. *)

open Echo_tensor

type region =
  | Forward  (** executes during the forward pass *)
  | Backward  (** executes during the backward pass (gradients, recomputes) *)

type t = private {
  id : int;
  name : string;
  op : Op.t;
  inputs : t list;
  shape : Shape.t;
  region : region;
  hint : float;
      (** scheduling priority consumed by [Graph]: smaller runs earlier
          among ready nodes. Defaults to the creation id, i.e. program
          order; graph rewrites assign clones a hint just below their first
          consumer's so recomputation runs just-in-time. *)
}

val create :
  ?name:string ->
  ?region:region ->
  ?shape:Shape.t ->
  ?hint:float ->
  Op.t ->
  t list ->
  t
(** General constructor. [shape] is required for leaves and forbidden
    otherwise; [region] defaults to [Forward]; [hint] defaults to the
    creation id (program order).
    @raise Invalid_argument on arity or shape errors. *)

val clone_with_inputs :
  ?region:region -> ?name:string -> ?hint:float -> t -> t list -> t
(** Fresh node with the same operator but new inputs (and optionally a new
    region/name/hint) — the primitive used by graph rewrites. The hint
    defaults to the cloned node's. *)

val id : t -> int
val hint : t -> float
val shape : t -> Shape.t
val op : t -> Op.t
val inputs : t -> t list
val region : t -> region
val name : t -> string

val size_bytes : t -> int
(** Device footprint of the node's output: 4 bytes per element (fp32). *)

val equal : t -> t -> bool
(** Identity (same id). *)

val compare : t -> t -> int

(** {1 Construction DSL}

    Thin wrappers over {!create} used by models and the autodiff engine.
    Binary elementwise ops require identical shapes. *)

val placeholder : ?name:string -> Shape.t -> t
val variable : ?name:string -> Shape.t -> t
val zeros : ?name:string -> ?region:region -> Shape.t -> t
val const_fill : ?name:string -> ?region:region -> float -> Shape.t -> t
val dropout_mask : ?name:string -> p:float -> seed:int -> Shape.t -> t
val add : ?region:region -> t -> t -> t
val sub : ?region:region -> t -> t -> t
val mul : ?region:region -> t -> t -> t
val div : ?region:region -> t -> t -> t
val neg : ?region:region -> t -> t
val scale : ?region:region -> float -> t -> t
val add_scalar : ?region:region -> float -> t -> t
val pow_const : ?region:region -> float -> t -> t
val sigmoid : ?name:string -> ?region:region -> t -> t
val tanh_ : ?name:string -> ?region:region -> t -> t
val relu : ?name:string -> ?region:region -> t -> t
val exp_ : ?region:region -> t -> t
val log_ : ?region:region -> t -> t
val sqrt_ : ?region:region -> t -> t
val sq : ?region:region -> t -> t
val recip : ?region:region -> t -> t
val sign : ?region:region -> t -> t
val matmul :
  ?name:string -> ?region:region -> ?trans_a:bool -> ?trans_b:bool -> t -> t -> t
val add_bias : ?name:string -> ?region:region -> t -> t -> t
val scale_by : ?region:region -> t -> t -> t
val slice : ?name:string -> ?region:region -> axis:int -> lo:int -> hi:int -> t -> t
val pad_slice : ?region:region -> axis:int -> lo:int -> full:int -> t -> t
val concat : ?name:string -> ?region:region -> axis:int -> t list -> t
val reshape : ?region:region -> Shape.t -> t -> t
val transpose2d : ?region:region -> t -> t
val reduce_sum : ?region:region -> axis:int -> keepdims:bool -> t -> t
val reduce_mean : ?region:region -> axis:int -> keepdims:bool -> t -> t
val broadcast_axis : ?region:region -> axis:int -> n:int -> t -> t
val softmax : ?name:string -> ?region:region -> t -> t
val log_softmax : ?name:string -> ?region:region -> t -> t
val cross_entropy : logits:t -> labels:t -> t
val cross_entropy_grad : logits:t -> labels:t -> t
  (** Always created in the [Backward] region. *)

val embedding : table:t -> ids:t -> t
val embedding_grad : vocab:int -> ids:t -> grad_out:t -> t
  (** Always created in the [Backward] region. *)

val conv2d : stride:int -> pad:int -> input:t -> kernel:t -> t

val pp : Format.formatter -> t -> unit
(** One line: [#id name op shape region]. *)

val reset_id_counter_for_tests : unit -> unit
(** Tests only: restart ids at 0 so expectations are stable. Never call this
    while nodes from a previous epoch are still alive. *)
