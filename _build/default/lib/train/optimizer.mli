(** First-order optimizers over (parameter, gradient) tensor pairs.

    State is keyed by parameter node id and updated functionally on the host;
    the simulated-GPU footprint of the state is accounted analytically by
    [Echo_exec.Footprint]. *)

open Echo_tensor
open Echo_ir

type t

type spec =
  | Sgd of { lr : float }
  | Momentum of { lr : float; momentum : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

val create : spec -> t

val footprint_kind : t -> Echo_exec.Footprint.optimizer

val step : t -> params:(Node.t * Tensor.t) list -> grads:(Node.t * Tensor.t) list
  -> (Node.t * Tensor.t) list
(** One update; returns the new parameter values in [params] order.
    [grads] must cover every parameter (match by node id).
    @raise Invalid_argument on a missing gradient. *)

val clip_by_global_norm : max_norm:float -> (Node.t * Tensor.t) list
  -> (Node.t * Tensor.t) list
(** Standard RNN-training gradient clipping. *)
