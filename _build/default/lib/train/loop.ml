open Echo_tensor
open Echo_ir

type batch = (Node.t * Tensor.t) list
type step_stats = { step : int; loss : float; grad_norm : float }
type result = { losses : float list; params : (Node.t * Tensor.t) list }

let global_norm grads =
  sqrt
    (List.fold_left
       (fun acc (_, g) ->
         let n = Tensor.frobenius g in
         acc +. (n *. n))
       0.0 grads)

let train ~graph ~params ~optimizer ?clip_norm ?on_step ~batches () =
  let param_nodes = List.map fst params in
  let run_step (step, params, losses) batch =
    let feeds = batch @ params in
    match Echo_exec.Interp.eval graph ~feeds with
    | [] -> invalid_arg "Loop.train: graph has no outputs"
    | loss_t :: grad_ts ->
      if List.length grad_ts <> List.length param_nodes then
        invalid_arg "Loop.train: gradient outputs do not match parameters";
      let loss = Tensor.get1 loss_t 0 in
      let grads = List.combine param_nodes grad_ts in
      let grads =
        match clip_norm with
        | None -> grads
        | Some max_norm -> Optimizer.clip_by_global_norm ~max_norm grads
      in
      (match on_step with
      | Some f -> f { step; loss; grad_norm = global_norm grads }
      | None -> ());
      let params = Optimizer.step optimizer ~params ~grads in
      (step + 1, params, loss :: losses)
  in
  let _, params, losses = List.fold_left run_step (0, params, []) batches in
  { losses = List.rev losses; params }

let perplexity loss = exp loss
