lib/train/loop.ml: Echo_exec Echo_ir Echo_tensor List Node Optimizer Tensor
