lib/train/optimizer.mli: Echo_exec Echo_ir Echo_tensor Node Tensor
