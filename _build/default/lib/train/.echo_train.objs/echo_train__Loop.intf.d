lib/train/loop.mli: Echo_ir Echo_tensor Graph Node Optimizer Tensor
