lib/train/optimizer.ml: Echo_exec Echo_ir Echo_tensor Float Hashtbl List Node Printf Tensor
