lib/gpusim/costmodel.mli: Device Echo_ir Graph Node Op
