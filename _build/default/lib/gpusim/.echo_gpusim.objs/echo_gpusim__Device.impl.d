lib/gpusim/device.ml: List
