lib/gpusim/timeline.mli: Device Echo_ir Format Graph Node Op
