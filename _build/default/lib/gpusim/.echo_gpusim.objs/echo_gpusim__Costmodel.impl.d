lib/gpusim/costmodel.ml: Array Device Echo_ir Echo_tensor Float Graph Hashtbl List Node Op Shape
