lib/gpusim/timeline.ml: Buffer Costmodel Device Echo_ir Float Format Graph Hashtbl List Node Op Printf String
