lib/gpusim/device.mli:
