type t = {
  name : string;
  peak_flops : float;
  bandwidth : float;
  launch_overhead_s : float;
  memory_bytes : int;
}

let gib = 1024 * 1024 * 1024

let titan_xp =
  {
    name = "titan-xp";
    peak_flops = 10.8e12;
    bandwidth = 547.0e9;
    launch_overhead_s = 5.0e-6;
    memory_bytes = 12 * gib;
  }

let v100 =
  {
    name = "v100";
    peak_flops = 14.0e12;
    bandwidth = 900.0e9;
    launch_overhead_s = 5.0e-6;
    memory_bytes = 16 * gib;
  }

let all = [ titan_xp; v100 ]
let by_name name = List.find_opt (fun d -> d.name = name) all
