open Echo_ir

type event = {
  name : string;
  op : Op.t;
  region : Node.region;
  start_s : float;
  duration_s : float;
}

type t = { events : event list; total_s : float }

let simulate device graph =
  let clock = ref 0.0 in
  let events =
    List.filter_map
      (fun node ->
        let d = Costmodel.node_time device node in
        if d = 0.0 then None
        else begin
          let e =
            {
              name = Node.name node;
              op = Node.op node;
              region = Node.region node;
              start_s = !clock;
              duration_s = d;
            }
          in
          clock := !clock +. d;
          Some e
        end)
      (Graph.nodes graph)
  in
  { events; total_s = !clock }

let events t = t.events
let total_s t = t.total_s

type line = { family : string; time_s : float; calls : int; share : float }

(* Operator family: the constructor name without attributes. *)
let family_of op =
  let s = Op.to_string op in
  match String.index_opt s '(' with Some i -> String.sub s 0 i | None -> s

let summary t =
  let totals : (string, float * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let time, calls =
        try Hashtbl.find totals (family_of e.op) with Not_found -> (0.0, 0)
      in
      Hashtbl.replace totals (family_of e.op) (time +. e.duration_s, calls + 1))
    t.events;
  Hashtbl.fold
    (fun family (time_s, calls) acc ->
      { family; time_s; calls; share = time_s /. t.total_s } :: acc)
    totals []
  |> List.sort (fun a b -> Float.compare b.time_s a.time_s)

let launch_share device t =
  let launches = float_of_int (List.length t.events) in
  launches *. device.Device.launch_overhead_s /. t.total_s

let to_chrome_trace t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d}"
           (String.map (fun c -> if c = '"' then '\'' else c) e.name)
           (family_of e.op) (1e6 *. e.start_s) (1e6 *. e.duration_s)
           (match e.region with Node.Forward -> 0 | Node.Backward -> 1)))
    t.events;
  Buffer.add_string buf "]";
  Buffer.contents buf

let pp_profile fmt t =
  Format.fprintf fmt "%8s %12s %8s %12s  %s@." "time%" "total" "calls" "avg"
    "kernel family";
  List.iter
    (fun l ->
      Format.fprintf fmt "%7.1f%% %10.3fms %8d %10.2fus  %s@."
        (100.0 *. l.share) (1000.0 *. l.time_s) l.calls
        (1e6 *. l.time_s /. float_of_int l.calls)
        l.family)
    (summary t)
