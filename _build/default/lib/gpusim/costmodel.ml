open Echo_tensor
open Echo_ir

let elts node = float_of_int (Shape.numel (Node.shape node))
let input_elts node =
  List.fold_left (fun acc i -> acc +. float_of_int (Shape.numel (Node.shape i))) 0.0
    (Node.inputs node)

(* Weight of one elementwise application, relative to a fused multiply-add.
   Transcendentals expand to polynomial approximations on real hardware. *)
let transcendental = 8.0

let conv_macs node =
  match (Node.op node, Node.shape node, Node.inputs node) with
  | Op.Conv2d _, out, [ _; kernel ] ->
    let ks = Node.shape kernel in
    float_of_int (Shape.numel out) *. float_of_int (ks.(1) * ks.(2) * ks.(3))
  | Op.Conv2dGradInput _, _, [ kernel; grad_out ] ->
    let ks = Node.shape kernel in
    float_of_int (Shape.numel (Node.shape grad_out))
    *. float_of_int (ks.(1) * ks.(2) * ks.(3))
  | Op.Conv2dGradKernel { kernel_shape; _ }, _, [ _; grad_out ] ->
    float_of_int (Shape.numel (Node.shape grad_out))
    *. float_of_int (kernel_shape.(1) * kernel_shape.(2) * kernel_shape.(3))
  | _ -> invalid_arg "conv_macs: not a convolution"

let node_flops node =
  match Node.op node with
  | Op.Placeholder | Op.Variable -> 0.0
  | Op.Zeros | Op.ConstFill _ -> 0.0
  | Op.DropoutMask _ -> 4.0 *. elts node
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.Sq | Op.Sign | Op.Recip ->
    elts node
  | Op.PowConst _ | Op.Sigmoid | Op.Tanh | Op.Exp | Op.Log | Op.Sqrt ->
    transcendental *. elts node
  | Op.Relu -> elts node
  | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.AddBias | Op.ScaleBy -> elts node
  | Op.Matmul { trans_a; trans_b } -> (
    match Node.inputs node with
    | [ a; _ ] ->
      let sa = Node.shape a in
      let k = if trans_a then sa.(0) else sa.(1) in
      ignore trans_b;
      2.0 *. elts node *. float_of_int k
    | _ -> invalid_arg "node_flops: malformed Matmul")
  | Op.Slice _ | Op.PadSlice _ | Op.Concat _ | Op.Reshape _ | Op.Transpose2d
  | Op.BroadcastAxis _ ->
    0.0
  | Op.ReduceSum _ | Op.ReduceMean _ -> input_elts node
  | Op.Softmax | Op.LogSoftmax -> (2.0 +. transcendental) *. elts node
  | Op.CrossEntropy | Op.CrossEntropyGrad -> (2.0 +. transcendental) *. input_elts node
  | Op.Embedding | Op.EmbeddingGrad _ -> 0.0
  | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    2.0 *. conv_macs node

let node_bytes node =
  match Node.op node with
  | Op.Placeholder | Op.Variable -> 0.0
  | _ -> 4.0 *. (elts node +. input_elts node)

let node_time device node =
  match Node.op node with
  | Op.Placeholder | Op.Variable -> 0.0
  | _ ->
    let compute = node_flops node /. device.Device.peak_flops in
    let memory = node_bytes node /. device.Device.bandwidth in
    device.Device.launch_overhead_s +. Float.max compute memory

let schedule_time device nodes =
  List.fold_left (fun acc n -> acc +. node_time device n) 0.0 nodes

let graph_time device graph = schedule_time device (Graph.nodes graph)

type phase_times = { forward_s : float; backward_s : float; total_s : float }

let phase_times device graph =
  let forward_s = schedule_time device (Graph.forward_nodes graph) in
  let backward_s = schedule_time device (Graph.backward_nodes graph) in
  { forward_s; backward_s; total_s = forward_s +. backward_s }

type kernel_class = Gemm | Conv | Elementwise | DataMovement | Reduction | Other

let classify = function
  | Op.Matmul _ -> Gemm
  | Op.Conv2d _ | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ -> Conv
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.AddBias | Op.ScaleBy | Op.DropoutMask _
  | Op.Zeros | Op.ConstFill _ ->
    Elementwise
  | Op.Slice _ | Op.PadSlice _ | Op.Concat _ | Op.Reshape _ | Op.Transpose2d
  | Op.BroadcastAxis _ | Op.Embedding | Op.EmbeddingGrad _ ->
    DataMovement
  | Op.ReduceSum _ | Op.ReduceMean _ | Op.Softmax | Op.LogSoftmax
  | Op.CrossEntropy | Op.CrossEntropyGrad ->
    Reduction
  | Op.Placeholder | Op.Variable -> Other

let class_to_string = function
  | Gemm -> "gemm"
  | Conv -> "conv"
  | Elementwise -> "elementwise"
  | DataMovement -> "data movement"
  | Reduction -> "reduction/softmax"
  | Other -> "other"

let time_by_class device graph =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let c = classify (Node.op n) in
      let t = node_time device n in
      Hashtbl.replace totals c (t +. try Hashtbl.find totals c with Not_found -> 0.0))
    (Graph.nodes graph);
  Hashtbl.fold (fun c t acc -> if t > 0.0 then (c, t) :: acc else acc) totals []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let optimizer_update_time device ~weight_bytes ~param_count ~state_tensors =
  let streamed = float_of_int (weight_bytes * (2 + state_tensors)) in
  (float_of_int param_count *. device.Device.launch_overhead_s)
  +. (streamed /. device.Device.bandwidth)
