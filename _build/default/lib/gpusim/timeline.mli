(** Simulated execution timeline — the substitute for the paper's nvprof
    profiles. Kernels execute back-to-back in schedule order at their
    roofline cost; the result can be summarised nvprof-style (time share per
    kernel family) or exported as a Chrome trace for visual inspection. *)

open Echo_ir

type event = {
  name : string;
  op : Op.t;
  region : Node.region;
  start_s : float;
  duration_s : float;
}

type t

val simulate : Device.t -> Graph.t -> t
val events : t -> event list
val total_s : t -> float

type line = {
  family : string;  (** operator family, e.g. ["Matmul"], ["Sigmoid"] *)
  time_s : float;
  calls : int;
  share : float;  (** fraction of total time *)
}

val summary : t -> line list
(** Per-operator-family totals, decreasing by time — the paper's "runtime
    breakdown by GPU kernels" figure. *)

val launch_share : Device.t -> t -> float
(** Fraction of the iteration spent in kernel-launch overhead. *)

val to_chrome_trace : t -> string
(** chrome://tracing / Perfetto JSON. *)

val pp_profile : Format.formatter -> t -> unit
(** nvprof-style table: time%%, time, calls, avg, family. *)
