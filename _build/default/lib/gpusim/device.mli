(** Analytic device profiles for the simulated-GPU cost model.

    The paper's experiments ran on real NVIDIA GPUs; this repository substitutes
    a roofline model (see DESIGN.md): a kernel costs
    [launch + max(flops / peak_flops, bytes / bandwidth)]. Absolute times are
    approximate, but the ratios the evaluation depends on — GEMM vs
    elementwise cost, recomputation overhead as a fraction of an iteration —
    are preserved. *)

type t = {
  name : string;
  peak_flops : float;  (** sustained fp32 FLOP/s *)
  bandwidth : float;  (** global-memory bytes/s *)
  launch_overhead_s : float;  (** per-kernel CPU-side launch latency *)
  memory_bytes : int;  (** device memory capacity *)
}

val titan_xp : t
(** 10.8 TFLOPS, 547 GB/s, 12 GiB — the card used by the original authors'
    group. *)

val v100 : t
(** 14 TFLOPS, 900 GB/s, 16 GiB. *)

val by_name : string -> t option
val all : t list
