(** Per-kernel and per-schedule cost estimation (roofline + launch). *)

open Echo_ir

val node_flops : Node.t -> float
(** Floating-point work of the kernel. Transcendental-heavy elementwise ops
    are weighted (an [exp] is not one FLOP); pure data movement is 0. *)

val node_bytes : Node.t -> float
(** Global-memory traffic: inputs read + output written, 4 bytes/element. *)

val node_time : Device.t -> Node.t -> float
(** Seconds. [Placeholder]/[Variable] cost nothing (no kernel runs). *)

val schedule_time : Device.t -> Node.t list -> float

val graph_time : Device.t -> Graph.t -> float
(** Sum over the graph's schedule. *)

type phase_times = { forward_s : float; backward_s : float; total_s : float }

val phase_times : Device.t -> Graph.t -> phase_times

type kernel_class = Gemm | Conv | Elementwise | DataMovement | Reduction | Other

val classify : Op.t -> kernel_class
val class_to_string : kernel_class -> string

val time_by_class : Device.t -> Graph.t -> (kernel_class * float) list
(** Decreasing by time; classes with zero time omitted. *)

val optimizer_update_time :
  Device.t -> weight_bytes:int -> param_count:int -> state_tensors:int -> float
(** Cost of applying one optimizer step outside the graph: each parameter
    launches one fused update kernel that streams the weight, the gradient
    and [state_tensors] state buffers. *)
