(** Algebraic simplification and constant folding.

    Rewrites that real framework executors apply before memory planning —
    they remove kernels the autodiff engine emits mechanically:

    - [Scale 1] / [AddScalar 0] / [PowConst 1] are dropped;
    - [Scale 0 x] and [Mul x Zeros] become [Zeros];
    - [Add x Zeros] / [Sub x Zeros] become [x]; [Mul x Ones]-style identities
      via [ConstFill];
    - [Neg (Neg x)] becomes [x]; [Scale a (Scale b x)] becomes [Scale (a*b) x];
    - [Reshape] to the identical shape is dropped; [Transpose2d (Transpose2d x)]
      becomes [x]; [BroadcastAxis ~n:1] is dropped.

    Shapes and values are preserved exactly; region tags survive (a rewrite
    of a backward node stays backward). *)

open Echo_ir

val run : Graph.t -> Graph.t

val count_folded : Graph.t -> int
(** Number of nodes removed or replaced (statistics / tests). *)
