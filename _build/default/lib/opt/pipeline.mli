(** The standard pre-planning optimisation pipeline: constant folding /
    algebraic simplification to a fixed point, then common-subexpression
    elimination. Run it on a training graph before the Echo pass, the way a
    framework's graph optimiser runs before its memory planner. *)

open Echo_ir

type stats = { folded : int; cse_removed : int; nodes_before : int; nodes_after : int }

val run : Graph.t -> Graph.t * stats

val pp_stats : Format.formatter -> stats -> unit
