(** Elementwise-fusion analysis.

    Chains of cheap elementwise operators that real compilers (XLA, TVM)
    fuse into single kernels are identified as {e fusion groups}: maximal
    single-consumer chains of same-shape elementwise nodes. The analysis
    does not rewrite the graph — the IR stays one-op-per-node so the memory
    planner and the Echo pass see every buffer — instead it informs the cost
    model: a fused group pays one kernel launch instead of one per member.

    This quantifies how much of the launch-bound recomputation overhead a
    fusing backend would erase — the cross-cutting optimisation the paper's
    discussion positions Echo alongside. *)

open Echo_ir
open Echo_gpusim

type stats = {
  groups : int;  (** fusion groups with at least 2 members *)
  fused_nodes : int;  (** elementwise nodes inside those groups *)
  launches_saved : int;  (** kernel launches a fusing backend avoids *)
}

val analyse : Graph.t -> stats

val fused_graph_time : Device.t -> Graph.t -> float
(** Simulated iteration time assuming every fusion group launches once:
    member kernels keep their roofline cost, but only the group head pays
    the launch overhead. *)
