open Echo_tensor
open Echo_ir
open Echo_gpusim

type stats = { groups : int; fused_nodes : int; launches_saved : int }

let elementwise node =
  match Node.op node with
  | Op.Neg | Op.Scale _ | Op.AddScalar _ | Op.PowConst _ | Op.Sigmoid | Op.Tanh
  | Op.Relu | Op.Exp | Op.Log | Op.Sqrt | Op.Sq | Op.Recip | Op.Sign | Op.Add
  | Op.Sub | Op.Mul | Op.Div | Op.ScaleBy ->
    true
  | Op.Placeholder | Op.Variable | Op.Zeros | Op.ConstFill _ | Op.DropoutMask _
  | Op.Matmul _ | Op.AddBias | Op.Slice _ | Op.PadSlice _ | Op.Concat _
  | Op.Reshape _ | Op.Transpose2d | Op.ReduceSum _ | Op.ReduceMean _
  | Op.BroadcastAxis _ | Op.Softmax | Op.LogSoftmax | Op.CrossEntropy
  | Op.CrossEntropyGrad | Op.Embedding | Op.EmbeddingGrad _ | Op.Conv2d _
  | Op.Conv2dGradInput _ | Op.Conv2dGradKernel _ ->
    false

(* A node joins its producer's group when it is elementwise, same-shaped as
   the producer, the producer is elementwise, and it is the producer's only
   consumer (single-consumer chains keep the analysis conservative: no
   recomputation or extra liveness is introduced by fusing them). *)
let member_of graph node =
  if not (elementwise node) then None
  else begin
    match Node.inputs node with
    | [] -> None
    | producer :: _ ->
      if
        elementwise producer
        && Shape.equal (Node.shape producer) (Node.shape node)
        && Node.region producer = Node.region node
        && List.length (Graph.consumers graph (Node.id producer)) = 1
      then Some producer
      else None
  end

let analyse graph =
  (* head id -> member count; nodes attach to their producer's group. *)
  let group_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let sizes : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun node ->
      match member_of graph node with
      | None -> ()
      | Some producer ->
        let head =
          match Hashtbl.find_opt group_of (Node.id producer) with
          | Some h -> h
          | None -> Node.id producer
        in
        Hashtbl.replace group_of (Node.id node) head;
        Hashtbl.replace sizes head
          (1 + try Hashtbl.find sizes head with Not_found -> 1))
    (Graph.nodes graph);
  let groups = ref 0 and fused = ref 0 and saved = ref 0 in
  Hashtbl.iter
    (fun _ size ->
      if size >= 2 then begin
        incr groups;
        fused := !fused + size;
        saved := !saved + (size - 1)
      end)
    sizes;
  { groups = !groups; fused_nodes = !fused; launches_saved = !saved }

let fused_graph_time device graph =
  let group_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun node ->
      match member_of graph node with
      | None -> ()
      | Some producer ->
        let head =
          match Hashtbl.find_opt group_of (Node.id producer) with
          | Some h -> h
          | None -> Node.id producer
        in
        Hashtbl.replace group_of (Node.id node) head)
    (Graph.nodes graph);
  List.fold_left
    (fun acc node ->
      let t = Costmodel.node_time device node in
      if t = 0.0 then acc
      else if Hashtbl.mem group_of (Node.id node) then
        (* group member: keep the roofline part, drop the launch *)
        acc +. Float.max 0.0 (t -. device.Device.launch_overhead_s)
      else acc +. t)
    0.0 (Graph.nodes graph)
