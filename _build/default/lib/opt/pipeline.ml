open Echo_ir

type stats = { folded : int; cse_removed : int; nodes_before : int; nodes_after : int }

let run graph =
  let nodes_before = Graph.node_count graph in
  let rec fold_fixpoint g total =
    let g' = Fold.run g in
    let n = Graph.node_count g and n' = Graph.node_count g' in
    if n' < n then fold_fixpoint g' (total + (n - n')) else (g', total)
  in
  let g, folded = fold_fixpoint graph 0 in
  let before_cse = Graph.node_count g in
  let g = Cse.run g in
  let nodes_after = Graph.node_count g in
  (g, { folded; cse_removed = before_cse - nodes_after; nodes_before; nodes_after })

let pp_stats fmt s =
  Format.fprintf fmt "%d nodes -> %d (folded %d, cse removed %d)" s.nodes_before
    s.nodes_after s.folded s.cse_removed
