(** Common-subexpression elimination.

    Two nodes compute the same value when they apply the same (pure)
    operator to the same inputs; CSE rebuilds the graph so every such value
    is computed once. Training graphs produced by symbolic autodiff contain
    many duplicates (e.g. repeated [1 - y^2] factors of tanh gradients and
    repeated slices of shared pre-activations), so CSE both shrinks the
    kernel count and — because fewer nodes means fewer distinct stashed
    buffers — interacts with the Echo pass; the bench ablates the
    combination.

    Region handling is conservative: a forward node never unifies with a
    backward node (that would silently turn a recomputation back into a
    stash). Semantics are preserved exactly: all operators are pure and
    stochastic ones are seeded, so structural equality implies value
    equality. *)

open Echo_ir

val run : Graph.t -> Graph.t

val count_redundant : Graph.t -> int
(** Number of nodes CSE would remove (statistics / tests). *)
