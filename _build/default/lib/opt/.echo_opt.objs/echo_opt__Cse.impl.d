lib/opt/cse.ml: Echo_ir Graph Hashtbl List Node Op
