lib/opt/cse.mli: Echo_ir Graph
