lib/opt/fold.ml: Echo_ir Echo_tensor Graph Hashtbl List Node Op Shape
