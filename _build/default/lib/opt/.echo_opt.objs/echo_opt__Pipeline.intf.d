lib/opt/pipeline.mli: Echo_ir Format Graph
