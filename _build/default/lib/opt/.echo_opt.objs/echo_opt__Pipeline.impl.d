lib/opt/pipeline.ml: Cse Echo_ir Fold Format Graph
