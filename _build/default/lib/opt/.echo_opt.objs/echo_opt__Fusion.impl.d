lib/opt/fusion.ml: Costmodel Device Echo_gpusim Echo_ir Echo_tensor Float Graph Hashtbl List Node Op Shape
