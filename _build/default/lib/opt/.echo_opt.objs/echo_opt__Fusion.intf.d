lib/opt/fusion.mli: Device Echo_gpusim Echo_ir Graph
