lib/opt/fold.mli: Echo_ir Graph
