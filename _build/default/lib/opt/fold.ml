open Echo_tensor
open Echo_ir

let is_zeros n =
  match Node.op n with
  | Op.Zeros | Op.ConstFill 0.0 -> true
  | _ -> false

(* Rewrite one node given already-simplified inputs. [None] = keep as-is. *)
let simplify node inputs =
  let same_region n = Node.region n = Node.region node in
  match (Node.op node, inputs) with
  | Op.Scale 1.0, [ x ] | Op.AddScalar 0.0, [ x ] | Op.PowConst 1.0, [ x ] ->
    Some x
  | Op.Scale 0.0, [ _ ] ->
    Some (Node.zeros ~region:(Node.region node) (Node.shape node))
  | Op.Mul, [ x; y ] when is_zeros x || is_zeros y ->
    Some (Node.zeros ~region:(Node.region node) (Node.shape node))
  | Op.Add, [ x; y ] when is_zeros y -> Some x
  | Op.Add, [ x; y ] when is_zeros x -> Some y
  | Op.Sub, [ x; y ] when is_zeros y -> Some x
  | Op.Neg, [ x ] -> (
    match (Node.op x, Node.inputs x) with
    | Op.Neg, [ inner ] when same_region x -> Some inner
    | _ -> None)
  | Op.Scale a, [ x ] -> (
    match (Node.op x, Node.inputs x) with
    | Op.Scale b, [ inner ] when same_region x ->
      Some (Node.scale ~region:(Node.region node) (a *. b) inner)
    | _ -> None)
  | Op.Reshape target, [ x ] when Shape.equal target (Node.shape x) -> Some x
  | Op.Transpose2d, [ x ] -> (
    match (Node.op x, Node.inputs x) with
    | Op.Transpose2d, [ inner ] when same_region x -> Some inner
    | _ -> None)
  | Op.BroadcastAxis { n = 1; _ }, [ x ] -> Some x
  | _ -> None

let rebuild graph =
  let repr : (int, Node.t) Hashtbl.t = Hashtbl.create 1024 in
  let folded = ref 0 in
  let resolve n =
    match Hashtbl.find_opt repr (Node.id n) with Some r -> r | None -> n
  in
  List.iter
    (fun n ->
      let inputs = List.map resolve (Node.inputs n) in
      match simplify n inputs with
      | Some replacement ->
        incr folded;
        Hashtbl.replace repr (Node.id n) replacement
      | None ->
        let changed =
          List.exists2 (fun a b -> not (Node.equal a b)) (Node.inputs n) inputs
        in
        if changed then
          Hashtbl.replace repr (Node.id n) (Node.clone_with_inputs n inputs))
    (Graph.nodes graph);
  (* Outputs must survive even when folded away to an existing node: wrap in
     nothing — Graph outputs may alias interior nodes, which is fine. *)
  (Graph.create (List.map resolve (Graph.outputs graph)), !folded)

let run graph = fst (rebuild graph)
let count_folded graph = snd (rebuild graph)
