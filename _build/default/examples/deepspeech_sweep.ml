(* DeepSpeech2 generality check: Echo on a conv + bidirectional-LSTM speech
   model. Convolution feature maps are expensive to recompute (the pass must
   leave them alone or spend real budget), while the biLSTM stash behaves
   like the NMT encoder — this exercises the cost-benefit analysis on a
   mixed graph.

   Run with: dune exec examples/deepspeech_sweep.exe *)

open Echo_models
open Echo_core

let () =
  let device = Echo_gpusim.Device.titan_xp in
  List.iter
    (fun (label, cfg) ->
      let ds2 = Deepspeech.build cfg in
      let training = Model.training ds2.Deepspeech.model in
      let graph = training.Echo_autodiff.Grad.graph in
      Format.printf "=== %s (%d output frames) ===@." label ds2.Deepspeech.out_frames;
      List.iter
        (fun policy ->
          let _, report = Pass.run ~device policy graph in
          Format.printf "  %a@." Pass.pp_report report)
        [
          Pass.Stash_all;
          Pass.Checkpoint_sqrt;
          Pass.Echo { overhead_budget = 0.03 };
          Pass.Echo { overhead_budget = 0.30 };
        ];
      Format.printf "@.")
    [
      ("ds2-small (3 x biLSTM-400)",
       { Deepspeech.ds2_like with rnn_layers = 3; rnn_hidden = 400; time = 64 });
      ("ds2 (5 x biLSTM-800)", Deepspeech.ds2_like);
    ]
