(* Quickstart: build a small LSTM language model, differentiate it, run the
   Echo recomputation pass, and verify that the rewritten training graph (a)
   computes bitwise-identical results and (b) needs less simulated GPU
   memory.

   Run with: dune exec examples/quickstart.exe *)

open Echo_tensor
open Echo_ir
open Echo_models
open Echo_core

let synthetic_feeds (lm : Language_model.t) =
  let rng = Rng.create 1234 in
  let ids node =
    Tensor.init (Node.shape node) (fun _ ->
      float_of_int (Rng.int rng lm.cfg.vocab))
  in
  [ (lm.token_input, ids lm.token_input); (lm.label_input, ids lm.label_input) ]
  @ Params.bindings lm.model.Model.params

let () =
  let cfg =
    {
      Language_model.ptb_default with
      vocab = 300;
      embed = 48;
      hidden = 48;
      seq_len = 16;
      batch = 8;
      layers = 2;
      dropout = 0.25;
    }
  in
  let lm = Language_model.build cfg in
  Format.printf "model: %a@." Model.describe lm.model;
  let training = Model.training lm.model in
  let graph = training.Echo_autodiff.Grad.graph in
  Format.printf "training graph: %a@." Graph.pp_stats graph;

  let device = Echo_gpusim.Device.titan_xp in
  let feeds = synthetic_feeds lm in
  let baseline_outputs = Echo_exec.Interp.eval graph ~feeds in

  Format.printf "@.%-18s %-30s %-8s %-24s %s@." "policy" "footprint" "factor"
    "sim time/iter" "bitwise-equal";
  List.iter
    (fun policy ->
      let rewritten, report = Pass.run ~device policy graph in
      let outputs = Echo_exec.Interp.eval rewritten ~feeds in
      let equal = List.for_all2 Tensor.equal baseline_outputs outputs in
      Format.printf "%-18s %12s -> %-12s %5.2fx  %8.2f -> %8.2f ms  %b@."
        report.Pass.policy
        (Echo_exec.Footprint.human
           report.Pass.baseline_mem.Echo_exec.Memplan.live_peak_bytes)
        (Echo_exec.Footprint.human
           report.Pass.optimised_mem.Echo_exec.Memplan.live_peak_bytes)
        (Pass.reduction report)
        (1000.0 *. report.Pass.baseline_time_s)
        (1000.0 *. report.Pass.optimised_time_s)
        equal;
      assert equal)
    Pass.default_policies;
  Format.printf "@.All policies preserved training semantics exactly.@."
