examples/nmt_footprint.mli:
