examples/memory_budget.ml: Autotune Echo_autodiff Echo_core Echo_exec Echo_gpusim Echo_models Footprint Format List Memplan Model Nmt Pass
