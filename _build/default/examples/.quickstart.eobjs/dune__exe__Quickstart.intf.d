examples/quickstart.mli:
