examples/deepspeech_sweep.mli:
