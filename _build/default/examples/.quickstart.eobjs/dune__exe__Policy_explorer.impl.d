examples/policy_explorer.ml: Corpus Echo_autodiff Echo_core Echo_gpusim Echo_models Echo_train Echo_workloads Float Format Language_model List Loop Model Optimizer Params Pass
