examples/quickstart.ml: Echo_autodiff Echo_core Echo_exec Echo_gpusim Echo_ir Echo_models Echo_tensor Format Graph Language_model List Model Node Params Pass Rng Tensor
