examples/nmt_footprint.ml: Echo_autodiff Echo_core Echo_exec Echo_gpusim Echo_models Footprint Format List Model Nmt Pass
