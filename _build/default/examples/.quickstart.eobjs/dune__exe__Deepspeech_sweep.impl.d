examples/deepspeech_sweep.ml: Deepspeech Echo_autodiff Echo_core Echo_gpusim Echo_models Format List Model Pass
