(* Unit and property tests for Shape and Rng. *)

open Echo_tensor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_numel () =
  check_int "scalar" 1 (Shape.numel Shape.scalar);
  check_int "vector" 7 (Shape.numel [| 7 |]);
  check_int "matrix" 12 (Shape.numel [| 3; 4 |]);
  check_int "cube" 24 (Shape.numel [| 2; 3; 4 |])

let test_of_list () =
  check_bool "valid" true (Shape.equal (Shape.of_list [ 2; 3 ]) [| 2; 3 |]);
  Alcotest.check_raises "zero dim" (Invalid_argument "Shape.validate: dimension 0 < 1")
    (fun () -> ignore (Shape.of_list [ 2; 0 ]));
  Alcotest.check_raises "negative dim"
    (Invalid_argument "Shape.validate: dimension -1 < 1") (fun () ->
      ignore (Shape.of_list [ -1 ]))

let test_equal () =
  check_bool "equal" true (Shape.equal [| 2; 3 |] [| 2; 3 |]);
  check_bool "rank" false (Shape.equal [| 2; 3 |] [| 2; 3; 1 |]);
  check_bool "dim" false (Shape.equal [| 2; 3 |] [| 3; 2 |]);
  check_bool "scalars" true (Shape.equal Shape.scalar [||])

let test_dim () =
  check_int "dim0" 2 (Shape.dim [| 2; 3 |] 0);
  check_int "dim1" 3 (Shape.dim [| 2; 3 |] 1);
  check_bool "oob raises" true
    (try
       ignore (Shape.dim [| 2; 3 |] 2);
       false
     with Invalid_argument _ -> true)

let test_concat_result () =
  check_bool "axis0" true
    (Shape.equal (Shape.concat_result ~axis:0 [| 2; 3 |] [| 4; 3 |]) [| 6; 3 |]);
  check_bool "axis1" true
    (Shape.equal (Shape.concat_result ~axis:1 [| 2; 3 |] [| 2; 5 |]) [| 2; 8 |]);
  check_bool "mismatch raises" true
    (try
       ignore (Shape.concat_result ~axis:0 [| 2; 3 |] [| 4; 4 |]);
       false
     with Invalid_argument _ -> true)

let test_slice_result () =
  check_bool "middle" true
    (Shape.equal (Shape.slice_result ~axis:1 ~lo:1 ~hi:3 [| 2; 5 |]) [| 2; 2 |]);
  check_bool "empty raises" true
    (try
       ignore (Shape.slice_result ~axis:0 ~lo:1 ~hi:1 [| 2 |]);
       false
     with Invalid_argument _ -> true);
  check_bool "oob raises" true
    (try
       ignore (Shape.slice_result ~axis:0 ~lo:0 ~hi:3 [| 2 |]);
       false
     with Invalid_argument _ -> true)

let test_strides () =
  Alcotest.(check (array int)) "row major" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |])

let test_ravel_unravel () =
  let s = [| 2; 3; 4 |] in
  check_int "ravel" 23 (Shape.ravel s [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "unravel" [| 1; 2; 3 |] (Shape.unravel s 23)

let test_to_string () =
  Alcotest.(check string) "matrix" "[2x3]" (Shape.to_string [| 2; 3 |]);
  Alcotest.(check string) "scalar" "[]" (Shape.to_string Shape.scalar)

(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different streams" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
    ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_int_covers () =
  (* With 10k draws over 10 buckets, every bucket must be hit. *)
  let rng = Rng.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int rng 10) <- true
  done;
  Array.iteri (fun i hit -> check_bool (Printf.sprintf "bucket %d" i) true hit) seen

let test_rng_normal_moments () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check_bool "mean ~ 0" true (Float.abs mean < 0.02);
  check_bool "var ~ 1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_split () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  check_bool "independent values" true (Rng.int64 parent <> Rng.int64 child)

let test_rng_copy () =
  let a = Rng.create 13 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let prop_ravel_roundtrip =
  QCheck.Test.make ~name:"shape ravel/unravel roundtrip" ~count:200
    QCheck.(
      triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (a, b, c) ->
      let s = [| a; b; c |] in
      let ok = ref true in
      for off = 0 to Shape.numel s - 1 do
        if Shape.ravel s (Shape.unravel s off) <> off then ok := false
      done;
      !ok)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "shape",
      [
        t "numel" test_numel;
        t "of_list validation" test_of_list;
        t "equal" test_equal;
        t "dim" test_dim;
        t "concat_result" test_concat_result;
        t "slice_result" test_slice_result;
        t "strides" test_strides;
        t "ravel/unravel" test_ravel_unravel;
        t "to_string" test_to_string;
        QCheck_alcotest.to_alcotest prop_ravel_roundtrip;
      ] );
    ( "rng",
      [
        t "determinism" test_rng_determinism;
        t "seed sensitivity" test_rng_seed_sensitivity;
        t "int range" test_rng_int_range;
        t "float range" test_rng_float_range;
        t "int covers buckets" test_rng_int_covers;
        t "normal moments" test_rng_normal_moments;
        t "split" test_rng_split;
        t "copy" test_rng_copy;
      ] );
  ]
