(* Optimizers, training loop and synthetic workloads. *)

open Echo_tensor
open Echo_ir
open Echo_train
open Echo_workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let param value =
  let node = Node.variable ~name:"p" (Tensor.shape value) in
  (node, value)

let test_sgd_step () =
  let p, v = param (Tensor.of_list1 [ 1.0; 2.0 ]) in
  let opt = Optimizer.create (Optimizer.Sgd { lr = 0.1 }) in
  let updated = Optimizer.step opt ~params:[ (p, v) ] ~grads:[ (p, Tensor.of_list1 [ 1.0; -1.0 ]) ] in
  check_bool "w - lr*g" true
    (Tensor.approx_equal (snd (List.hd updated)) (Tensor.of_list1 [ 0.9; 2.1 ]))

let test_momentum_accumulates () =
  let p, v = param (Tensor.of_list1 [ 0.0 ]) in
  let opt = Optimizer.create (Optimizer.Momentum { lr = 1.0; momentum = 0.5 }) in
  let g = Tensor.of_list1 [ 1.0 ] in
  let v1 = Optimizer.step opt ~params:[ (p, v) ] ~grads:[ (p, g) ] in
  let v2 = Optimizer.step opt ~params:v1 ~grads:[ (p, g) ] in
  (* velocities: 1, then 1.5; positions: -1, then -2.5 *)
  check_float "after two steps" (-2.5) (Tensor.get1 (snd (List.hd v2)) 0)

let test_adam_direction_and_magnitude () =
  let p, v = param (Tensor.of_list1 [ 0.0 ]) in
  let opt =
    Optimizer.create (Optimizer.Adam { lr = 0.1; beta1 = 0.9; beta2 = 0.999; eps = 1e-8 })
  in
  let updated =
    Optimizer.step opt ~params:[ (p, v) ] ~grads:[ (p, Tensor.of_list1 [ 3.0 ]) ]
  in
  let x = Tensor.get1 (snd (List.hd updated)) 0 in
  (* First Adam step is ~ -lr regardless of gradient scale. *)
  check_bool "step ~ -lr" true (Float.abs (x +. 0.1) < 1e-3)

let test_missing_gradient_raises () =
  let p, v = param (Tensor.of_list1 [ 0.0 ]) in
  let opt = Optimizer.create (Optimizer.Sgd { lr = 0.1 }) in
  check_bool "raises" true
    (try
       ignore (Optimizer.step opt ~params:[ (p, v) ] ~grads:[]);
       false
     with Invalid_argument _ -> true)

let test_clipping () =
  let p, _ = param (Tensor.of_list1 [ 0.0; 0.0 ]) in
  let g = Tensor.of_list1 [ 3.0; 4.0 ] in
  let clipped = Optimizer.clip_by_global_norm ~max_norm:1.0 [ (p, g) ] in
  check_float "renormalised" 1.0 (Tensor.frobenius (snd (List.hd clipped)));
  let untouched = Optimizer.clip_by_global_norm ~max_norm:10.0 [ (p, g) ] in
  check_bool "below threshold untouched" true (Tensor.equal g (snd (List.hd untouched)))

let test_footprint_kinds () =
  check_bool "sgd" true
    (Optimizer.footprint_kind (Optimizer.create (Optimizer.Sgd { lr = 0.1 }))
    = Echo_exec.Footprint.Sgd);
  check_bool "adam" true
    (Optimizer.footprint_kind
       (Optimizer.create (Optimizer.Adam { lr = 0.1; beta1 = 0.9; beta2 = 0.99; eps = 1e-8 }))
    = Echo_exec.Footprint.Adam)

(* Training loop on a convex toy problem: minimise ||w - target||^2. *)
let test_loop_converges () =
  let w = Node.variable ~name:"w" [| 2 |] in
  let target = Node.placeholder ~name:"t" [| 2 |] in
  let diff = Node.sub w target in
  let loss = Node.reduce_sum ~axis:0 ~keepdims:false (Node.sq diff) in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ w ] in
  let batches =
    List.init 50 (fun _ -> [ (target, Tensor.of_list1 [ 3.0; -2.0 ]) ])
  in
  let result =
    Loop.train ~graph:training.Echo_autodiff.Grad.graph
      ~params:[ (w, Tensor.zeros [| 2 |]) ]
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.1 }))
      ~batches ()
  in
  let final = snd (List.hd result.Loop.params) in
  check_bool "converged" true
    (Tensor.approx_equal ~tol:1e-3 final (Tensor.of_list1 [ 3.0; -2.0 ]));
  check_bool "loss decreasing" true
    (List.nth result.Loop.losses 49 < List.nth result.Loop.losses 0)

let test_loop_on_step_callback () =
  let w = Node.variable [| 1 |] in
  let loss = Node.reduce_sum ~axis:0 ~keepdims:false (Node.sq w) in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ w ] in
  let seen = ref [] in
  let _ =
    Loop.train ~graph:training.Echo_autodiff.Grad.graph
      ~params:[ (w, Tensor.of_list1 [ 2.0 ]) ]
      ~optimizer:(Optimizer.create (Optimizer.Sgd { lr = 0.1 }))
      ~on_step:(fun s -> seen := s.Loop.step :: !seen)
      ~batches:[ []; []; [] ] ()
  in
  Alcotest.(check (list int)) "steps observed" [ 2; 1; 0 ] !seen

let test_perplexity () = check_float "exp" (exp 2.0) (Loop.perplexity 2.0)

(* Corpus *)

let test_corpus_deterministic () =
  let a = Corpus.generate ~seed:1 ~vocab:100 ~length:1000 in
  let b = Corpus.generate ~seed:1 ~vocab:100 ~length:1000 in
  let same = ref true in
  for i = 0 to 999 do
    if Corpus.token a i <> Corpus.token b i then same := false
  done;
  check_bool "same stream" true !same

let test_corpus_token_range () =
  let c = Corpus.generate ~seed:2 ~vocab:37 ~length:5000 in
  for i = 0 to 4999 do
    let t = Corpus.token c i in
    check_bool "in range" true (t >= 0 && t < 37)
  done

let test_corpus_zipf_head_heavy () =
  let c = Corpus.generate ~seed:3 ~vocab:1000 ~length:50_000 in
  let count_low = ref 0 in
  for i = 0 to Corpus.length c - 1 do
    if Corpus.token c i < 10 then incr count_low
  done;
  (* Top-10 ranks of a 1000-token Zipf law carry ~39% of the mass. *)
  check_bool "head heavy" true (float_of_int !count_low /. 50_000.0 > 0.2)

let test_lm_batches_shift () =
  let c = Corpus.generate ~seed:4 ~vocab:50 ~length:100_000 in
  let batches = Corpus.lm_batches c ~batch:4 ~seq_len:6 ~steps:3 in
  check_int "steps" 3 (List.length batches);
  List.iter
    (fun (tokens, labels) ->
      check_bool "shapes" true
        (Shape.equal (Tensor.shape tokens) [| 24 |]
        && Shape.equal (Tensor.shape labels) [| 24 |]))
    batches;
  (* label(t, b) = token(t+1, b): compare across consecutive time rows. *)
  let tokens, labels = List.hd batches in
  for b = 0 to 3 do
    for t = 0 to 4 do
      check_float "shifted by one"
        (Tensor.get1 tokens (((t + 1) * 4) + b))
        (Tensor.get1 labels ((t * 4) + b))
    done
  done

let test_lm_batches_too_short () =
  let c = Corpus.generate ~seed:5 ~vocab:10 ~length:50 in
  check_bool "raises" true
    (try
       ignore (Corpus.lm_batches c ~batch:4 ~seq_len:20 ~steps:10);
       false
     with Invalid_argument _ -> true)

let test_pair_batches_shapes () =
  let src = Corpus.generate ~seed:6 ~vocab:30 ~length:50_000 in
  let tgt = Corpus.generate ~seed:7 ~vocab:40 ~length:50_000 in
  let batches = Corpus.pair_batches ~src ~tgt ~batch:3 ~src_len:5 ~tgt_len:4 ~steps:2 in
  check_int "steps" 2 (List.length batches);
  List.iter
    (fun (s, ti, l) ->
      check_bool "src" true (Shape.equal (Tensor.shape s) [| 15 |]);
      check_bool "tgt" true (Shape.equal (Tensor.shape ti) [| 12 |]);
      check_bool "labels" true (Shape.equal (Tensor.shape l) [| 12 |]))
    batches

let test_spectrogram_batches () =
  let batches =
    Corpus.spectrogram_batches ~seed:8 ~batch:2 ~time:16 ~freq:8 ~classes:5 ~frames:4
      ~steps:2
  in
  check_int "steps" 2 (List.length batches);
  List.iter
    (fun (spec, align) ->
      check_bool "spec shape" true (Shape.equal (Tensor.shape spec) [| 2; 1; 16; 8 |]);
      check_bool "align shape" true (Shape.equal (Tensor.shape align) [| 8 |]);
      for i = 0 to 7 do
        let v = int_of_float (Tensor.get1 align i) in
        check_bool "class range" true (v >= 0 && v < 5)
      done)
    batches

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "optimizer",
      [
        t "sgd step" test_sgd_step;
        t "momentum accumulates" test_momentum_accumulates;
        t "adam step" test_adam_direction_and_magnitude;
        t "missing gradient" test_missing_gradient_raises;
        t "clipping" test_clipping;
        t "footprint kinds" test_footprint_kinds;
      ] );
    ( "loop",
      [
        t "converges" test_loop_converges;
        t "on_step callback" test_loop_on_step_callback;
        t "perplexity" test_perplexity;
      ] );
    ( "corpus",
      [
        t "deterministic" test_corpus_deterministic;
        t "token range" test_corpus_token_range;
        t "zipf head heavy" test_corpus_zipf_head_heavy;
        t "lm batches shift" test_lm_batches_shift;
        t "lm batches too short" test_lm_batches_too_short;
        t "pair batches" test_pair_batches_shapes;
        t "spectrogram batches" test_spectrogram_batches;
      ] );
  ]
