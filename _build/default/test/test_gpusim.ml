(* Cost-model tests: FLOP formulas, roofline behaviour, kernel classes. *)

open Echo_ir
open Echo_gpusim

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let dev = Device.titan_xp

let test_device_lookup () =
  check_bool "titan-xp" true (Device.by_name "titan-xp" = Some Device.titan_xp);
  check_bool "v100" true (Device.by_name "v100" = Some Device.v100);
  check_bool "unknown" true (Device.by_name "tpu" = None)

let test_matmul_flops () =
  let a = Node.placeholder [| 8; 16 |] and b = Node.placeholder [| 16; 4 |] in
  let m = Node.matmul a b in
  check_float "2mnk" (2.0 *. 8.0 *. 4.0 *. 16.0) (Costmodel.node_flops m)

let test_matmul_flops_trans () =
  let a = Node.placeholder [| 16; 8 |] and b = Node.placeholder [| 4; 16 |] in
  let m = Node.matmul ~trans_a:true ~trans_b:true a b in
  check_float "transposes same flops" (2.0 *. 8.0 *. 4.0 *. 16.0) (Costmodel.node_flops m)

let test_conv_flops () =
  let input = Node.placeholder [| 2; 3; 8; 8 |] in
  let kernel = Node.variable [| 5; 3; 3; 3 |] in
  let c = Node.conv2d ~stride:1 ~pad:1 ~input ~kernel in
  (* out 2x5x8x8, macs per out = 3*3*3 *)
  check_float "2 * out * cin*kh*kw" (2.0 *. (2.0 *. 5.0 *. 64.0) *. 27.0)
    (Costmodel.node_flops c)

let test_data_movement_zero_flops () =
  let x = Node.placeholder [| 4; 4 |] in
  check_float "slice" 0.0 (Costmodel.node_flops (Node.slice ~axis:0 ~lo:0 ~hi:2 x));
  check_float "reshape" 0.0 (Costmodel.node_flops (Node.reshape [| 16 |] x));
  check_float "transpose" 0.0 (Costmodel.node_flops (Node.transpose2d x))

let test_leaves_free () =
  let x = Node.placeholder [| 1024; 1024 |] in
  check_float "placeholder costs nothing" 0.0 (Costmodel.node_time dev x);
  let v = Node.variable [| 1024; 1024 |] in
  check_float "variable costs nothing" 0.0 (Costmodel.node_time dev v)

let test_launch_overhead_floor () =
  let x = Node.placeholder [| 1 |] in
  let y = Node.neg x in
  check_bool "tiny kernel ~ launch" true
    (Costmodel.node_time dev y >= dev.Device.launch_overhead_s)

let test_roofline_bandwidth_bound () =
  (* A big elementwise op moves bytes but does few flops: memory-bound. *)
  let x = Node.placeholder [| 4096; 4096 |] in
  let y = Node.neg x in
  let expected = dev.Device.launch_overhead_s +. (Costmodel.node_bytes y /. dev.Device.bandwidth) in
  check_bool "memory bound" true
    (Float.abs (Costmodel.node_time dev y -. expected) < 1e-9)

let test_roofline_compute_bound () =
  (* A large square GEMM is compute-bound. *)
  let a = Node.placeholder [| 2048; 2048 |] in
  let m = Node.matmul a a in
  let expected =
    dev.Device.launch_overhead_s +. (Costmodel.node_flops m /. dev.Device.peak_flops)
  in
  check_bool "compute bound" true
    (Float.abs (Costmodel.node_time dev m -. expected) < 1e-9)

let test_time_monotone_in_size () =
  let small = Node.neg (Node.placeholder [| 128 |]) in
  let big = Node.neg (Node.placeholder [| 1_048_576 |]) in
  check_bool "bigger is slower" true
    (Costmodel.node_time dev big > Costmodel.node_time dev small)

let test_graph_time_additive () =
  let x = Node.placeholder [| 64 |] in
  let a = Node.neg x in
  let b = Node.sq a in
  let g = Graph.create [ b ] in
  check_bool "sum of kernels" true
    (Float.abs
       (Costmodel.graph_time dev g
       -. (Costmodel.node_time dev a +. Costmodel.node_time dev b))
    < 1e-12)

let test_phase_times () =
  let x = Node.placeholder [| 64 |] in
  let f = Node.sigmoid x in
  let b = Node.mul ~region:Node.Backward f f in
  let g = Graph.create [ b ] in
  let pt = Costmodel.phase_times dev g in
  check_bool "split adds up" true
    (Float.abs (pt.Costmodel.total_s -. (pt.Costmodel.forward_s +. pt.Costmodel.backward_s))
    < 1e-12);
  check_bool "both nonzero" true
    (pt.Costmodel.forward_s > 0.0 && pt.Costmodel.backward_s > 0.0)

let test_classify () =
  check_bool "gemm" true
    (Costmodel.classify (Op.Matmul { trans_a = false; trans_b = false }) = Costmodel.Gemm);
  check_bool "conv" true
    (Costmodel.classify (Op.Conv2d { stride = 1; pad = 0 }) = Costmodel.Conv);
  check_bool "elementwise" true (Costmodel.classify Op.Sigmoid = Costmodel.Elementwise);
  check_bool "movement" true
    (Costmodel.classify (Op.Slice { axis = 0; lo = 0; hi = 1 }) = Costmodel.DataMovement);
  check_bool "reduction" true (Costmodel.classify Op.Softmax = Costmodel.Reduction)

let test_time_by_class () =
  let x = Node.placeholder [| 32; 32 |] in
  let m = Node.matmul x x in
  let s = Node.sigmoid m in
  let g = Graph.create [ s ] in
  let classes = Costmodel.time_by_class dev g in
  check_bool "has gemm and elementwise" true
    (List.mem_assoc Costmodel.Gemm classes && List.mem_assoc Costmodel.Elementwise classes)

let test_optimizer_update_time () =
  let t0 = Costmodel.optimizer_update_time dev ~weight_bytes:1_000_000 ~param_count:10 ~state_tensors:0 in
  let t2 = Costmodel.optimizer_update_time dev ~weight_bytes:1_000_000 ~param_count:10 ~state_tensors:2 in
  check_bool "state costs bandwidth" true (t2 > t0);
  check_bool "positive" true (t0 > 0.0)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "costmodel",
      [
        t "device lookup" test_device_lookup;
        t "matmul flops" test_matmul_flops;
        t "matmul flops transposed" test_matmul_flops_trans;
        t "conv flops" test_conv_flops;
        t "data movement zero flops" test_data_movement_zero_flops;
        t "leaves free" test_leaves_free;
        t "launch overhead floor" test_launch_overhead_floor;
        t "roofline bandwidth bound" test_roofline_bandwidth_bound;
        t "roofline compute bound" test_roofline_compute_bound;
        t "monotone in size" test_time_monotone_in_size;
        t "graph time additive" test_graph_time_additive;
        t "phase times" test_phase_times;
        t "classify" test_classify;
        t "time by class" test_time_by_class;
        t "optimizer update" test_optimizer_update_time;
      ] );
  ]
