(* Additional coverage: interpreter dispatch for less-travelled operators,
   pass/ladder behaviour, profiler on rewritten graphs, and idempotence
   properties of the optimisation passes. *)

open Echo_tensor
open Echo_ir
open Echo_exec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let dev = Echo_gpusim.Device.titan_xp

(* Interpreter dispatch *)

let eval1 node feeds = List.hd (Interp.eval (Graph.create [ node ]) ~feeds)

let test_interp_scale_by () =
  let x = Node.placeholder [| 3 |] in
  let s = Node.const_fill 2.5 Shape.scalar in
  let y = Node.scale_by x s in
  let out = eval1 y [ (x, Tensor.of_list1 [ 1.; 2.; 4. ]) ] in
  check_bool "scaled" true (Tensor.equal out (Tensor.of_list1 [ 2.5; 5.; 10. ]))

let test_interp_pow_recip_sign () =
  let x = Node.placeholder [| 3 |] in
  let feeds = [ (x, Tensor.of_list1 [ 4.0; 1.0; 0.25 ]) ] in
  check_bool "pow" true
    (Tensor.approx_equal (eval1 (Node.pow_const 0.5 x) feeds)
       (Tensor.of_list1 [ 2.0; 1.0; 0.5 ]));
  check_bool "recip" true
    (Tensor.approx_equal (eval1 (Node.recip x) feeds)
       (Tensor.of_list1 [ 0.25; 1.0; 4.0 ]));
  check_bool "sign" true
    (Tensor.equal (eval1 (Node.sign (Node.add_scalar (-1.0) x)) feeds)
       (Tensor.of_list1 [ 1.0; 0.0; -1.0 ]))

let test_interp_embedding_grad_dispatch () =
  let ids = Node.placeholder [| 2 |] in
  let grad = Node.placeholder [| 2; 2 |] in
  let g = Node.embedding_grad ~vocab:3 ~ids ~grad_out:grad in
  let out =
    eval1 g
      [ (ids, Tensor.of_list1 [ 2.; 2. ]);
        (grad, Tensor.of_list2 [ [ 1.; 1. ]; [ 2.; 2. ] ]) ]
  in
  check_bool "accumulated at row 2" true
    (Tensor.equal out (Tensor.of_list2 [ [ 0.; 0. ]; [ 0.; 0. ]; [ 3.; 3. ] ]))

let test_interp_conv_grads_dispatch () =
  let input = Node.placeholder [| 1; 1; 3; 3 |] in
  let kernel = Node.placeholder [| 1; 1; 2; 2 |] in
  let y = Node.conv2d ~stride:1 ~pad:0 ~input ~kernel in
  let training =
    (* conv grads only exist via autodiff; drive them through eval_node *)
    Node.inputs y
  in
  ignore training;
  let rng = Rng.create 4 in
  let iv = Tensor.uniform rng [| 1; 1; 3; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let kv = Tensor.uniform rng [| 1; 1; 2; 2 |] ~lo:(-1.0) ~hi:1.0 in
  let gi =
    Interp.eval_node
      (Op.Conv2dGradInput { stride = 1; pad = 0; input_shape = [| 1; 1; 3; 3 |] })
      [| 1; 1; 3; 3 |]
      [ kv; Tensor.ones [| 1; 1; 2; 2 |] ]
  in
  check_bool "grad input shape" true (Shape.equal (Tensor.shape gi) [| 1; 1; 3; 3 |]);
  let gk =
    Interp.eval_node
      (Op.Conv2dGradKernel { stride = 1; pad = 0; kernel_shape = [| 1; 1; 2; 2 |] })
      [| 1; 1; 2; 2 |]
      [ iv; Tensor.ones [| 1; 1; 2; 2 |] ]
  in
  check_bool "grad kernel shape" true (Shape.equal (Tensor.shape gk) [| 1; 1; 2; 2 |])

let test_interp_rejects_variable_node () =
  check_bool "raises" true
    (try
       ignore (Interp.eval_node Op.Variable [| 2 |] []);
       false
     with Invalid_argument _ -> true)

(* Rng.uniform bounds *)

let test_rng_uniform_bounds () =
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng ~lo:(-3.0) ~hi:(-1.0) in
    check_bool "in range" true (v >= -3.0 && v < -1.0)
  done

(* Pass / ladder *)

let small_training () =
  let open Echo_models in
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 70;
        embed = 16;
        hidden = 16;
        layers = 2;
        seq_len = 8;
        batch = 4;
        dropout = 0.2;
      }
  in
  (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph

let test_echo_larger_budget_never_worse_than_noop () =
  let graph = small_training () in
  List.iter
    (fun b ->
      let _, r =
        Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = b }) graph
      in
      check_bool "no regression at any budget" true (Echo_core.Pass.reduction r >= 1.0))
    [ 0.005; 0.02; 0.08; 0.4; 1.0 ]

let test_echo_cheap_only_sound () =
  (* Greedy selection is not monotone in its candidate set, so cheap-only may
     occasionally out-reduce full Echo; what must hold is that both ship
     non-regressing plans and cheap-only stays within its overhead budget. *)
  let graph = small_training () in
  let _, cheap =
    Echo_core.Pass.run ~device:dev
      (Echo_core.Pass.Echo_cheap_only { overhead_budget = 0.2 })
      graph
  in
  let _, full =
    Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = 0.2 }) graph
  in
  check_bool "cheap-only no regression" true (Echo_core.Pass.reduction cheap >= 1.0);
  check_bool "full no regression" true (Echo_core.Pass.reduction full >= 1.0);
  check_bool "cheap-only overhead within budget" true
    (Echo_core.Pass.overhead cheap <= 0.2 +. 1e-9)

let test_timeline_clones_in_backward_lane () =
  let graph = small_training () in
  let rewritten, _ =
    Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = 0.3 }) graph
  in
  let tl = Echo_gpusim.Timeline.simulate dev rewritten in
  let clone_events =
    List.filter
      (fun e ->
        let n = e.Echo_gpusim.Timeline.name in
        String.length n >= 2 && String.sub n (String.length n - 2) 2 = "~r")
      (Echo_gpusim.Timeline.events tl)
  in
  check_bool "clones exist" true (clone_events <> []);
  List.iter
    (fun e ->
      check_bool "clone in backward lane" true
        (e.Echo_gpusim.Timeline.region = Node.Backward))
    clone_events

(* Optimisation pass idempotence *)

let test_cse_idempotent () =
  let graph = small_training () in
  let once = Echo_opt.Cse.run graph in
  let twice = Echo_opt.Cse.run once in
  check_int "fixed point" (Graph.node_count once) (Graph.node_count twice)

let test_pipeline_idempotent () =
  let graph = small_training () in
  let g1, _ = Echo_opt.Pipeline.run graph in
  let g2, stats = Echo_opt.Pipeline.run g1 in
  check_int "fixed point" (Graph.node_count g1) (Graph.node_count g2);
  check_int "nothing folded on second run" 0 stats.Echo_opt.Pipeline.folded

(* Device profiles sanity *)

let test_device_profiles_ordered () =
  let txp = Echo_gpusim.Device.titan_xp and v100 = Echo_gpusim.Device.v100 in
  check_bool "v100 faster" true
    (v100.Echo_gpusim.Device.peak_flops > txp.Echo_gpusim.Device.peak_flops);
  check_bool "v100 more bandwidth" true
    (v100.Echo_gpusim.Device.bandwidth > txp.Echo_gpusim.Device.bandwidth);
  (* same graph is faster on the faster device *)
  let graph = small_training () in
  check_bool "simulated speedup" true
    (Echo_gpusim.Costmodel.graph_time v100 graph
    < Echo_gpusim.Costmodel.graph_time txp graph)

let test_selection_device_sensitivity () =
  (* Budgets are fractions of iteration time, so a faster device changes the
     absolute budget; selection must stay within it on both devices. *)
  let graph = small_training () in
  List.iter
    (fun device ->
      let sel = Echo_core.Select.echo device graph ~overhead_budget:0.1 in
      let t0 = Echo_gpusim.Costmodel.graph_time device graph in
      check_bool "budget respected" true
        (sel.Echo_core.Select.claimed_cost_s <= (0.1 *. t0) +. 1e-12))
    [ Echo_gpusim.Device.titan_xp; Echo_gpusim.Device.v100 ]

let test_interp_shapes_agree_with_inference () =
  (* Every value the interpreter produces must have exactly the shape the
     static inference promised — over a full LM training graph. *)
  let open Echo_models in
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 40;
        embed = 10;
        hidden = 10;
        layers = 2;
        seq_len = 5;
        batch = 3;
        dropout = 0.3;
      }
  in
  let graph = (Model.training lm.Language_model.model).Echo_autodiff.Grad.graph in
  let rng = Rng.create 55 in
  let ids n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 40)) in
  let feeds =
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  let values = Interp.eval_all graph ~feeds in
  List.iter
    (fun n ->
      let v = Hashtbl.find values (Node.id n) in
      check_bool (Node.name n) true (Shape.equal (Tensor.shape v) (Node.shape n)))
    (Graph.nodes graph)

let test_unroll_distinct_dropout_masks () =
  (* Standard (non-variational) dropout: each timestep and layer must get an
     independent mask, i.e. distinct seeds. *)
  let open Echo_models in
  let params = Params.create ~seed:61 in
  let cfg =
    { Recurrent.kind = Recurrent.Lstm; input_dim = 4; hidden = 4; layers = 2;
      dropout = 0.5; seed = 9 }
  in
  let xs = List.init 3 (fun _ -> Node.placeholder [| 2; 4 |]) in
  ignore (Recurrent.unroll params "rnn" cfg ~batch:2 ~xs);
  ignore params;
  (* collect every DropoutMask seed reachable from a fresh unroll *)
  let params2 = Params.create ~seed:62 in
  let tops = Recurrent.unroll params2 "rnn" cfg ~batch:2 ~xs in
  let g = Graph.create [ List.hd (List.rev tops) ] in
  let seeds =
    List.filter_map
      (fun n ->
        match Node.op n with
        | Op.DropoutMask { seed; _ } -> Some seed
        | _ -> None)
      (Graph.nodes g)
  in
  check_bool "several masks" true (List.length seeds >= 4);
  check_int "all seeds distinct" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

(* Tensor odds and ends *)

let test_outer_and_scalar () =
  let a = Tensor.of_list1 [ 2.0 ] and b = Tensor.of_list1 [ 3.0; 4.0 ] in
  check_bool "outer row" true
    (Tensor.equal (Tensor.outer a b) (Tensor.of_list2 [ [ 6.0; 8.0 ] ]));
  check_float "scalar roundtrip" 7.5 (Tensor.get1 (Tensor.scalar 7.5) 0)

let test_tensor_to_string_truncates () =
  let t = Tensor.zeros [| 100 |] in
  let s = Tensor.to_string t in
  check_bool "short" true (String.length s < 200)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "interp.extra",
      [
        t "scale_by" test_interp_scale_by;
        t "pow/recip/sign" test_interp_pow_recip_sign;
        t "embedding grad dispatch" test_interp_embedding_grad_dispatch;
        t "conv grads dispatch" test_interp_conv_grads_dispatch;
        t "rejects variable" test_interp_rejects_variable_node;
        t "rng uniform bounds" test_rng_uniform_bounds;
      ] );
    ( "pass.extra",
      [
        t "no regression at any budget" test_echo_larger_budget_never_worse_than_noop;
        t "cheap-only sound" test_echo_cheap_only_sound;
        t "clones in backward lane" test_timeline_clones_in_backward_lane;
      ] );
    ( "opt.extra",
      [
        t "cse idempotent" test_cse_idempotent;
        t "pipeline idempotent" test_pipeline_idempotent;
      ] );
    ( "gpusim.extra",
      [
        t "device profiles ordered" test_device_profiles_ordered;
        t "selection device sensitivity" test_selection_device_sensitivity;
      ] );
    ( "consistency",
      [
        t "interp shapes agree with inference" test_interp_shapes_agree_with_inference;
        t "distinct dropout masks per step" test_unroll_distinct_dropout_masks;
      ] );
    ( "tensor.extra",
      [
        t "outer and scalar" test_outer_and_scalar;
        t "to_string truncates" test_tensor_to_string_truncates;
      ] );
  ]
