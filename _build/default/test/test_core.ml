(* The Echo pass itself: stash analysis, selection policies, the mirror
   rewrite, and end-to-end policy behaviour — including the paper's key
   invariant that every rewrite preserves training semantics bit for bit. *)

open Echo_tensor
open Echo_ir
open Echo_core
open Echo_exec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dev = Echo_gpusim.Device.titan_xp

(* A small but representative training graph: 2-layer MLP with sigmoid and
   dropout, cross-entropy loss. *)
let mlp_training ~batch ~dim ~classes ~seed =
  let w1 = Node.variable ~name:"w1" [| dim; dim |] in
  let w2 = Node.variable ~name:"w2" [| classes; dim |] in
  let x = Node.placeholder ~name:"x" [| batch; dim |] in
  let labels = Node.placeholder ~name:"y" [| batch |] in
  let h = Node.sigmoid ~name:"h" (Node.matmul ~trans_b:true x w1) in
  let h = Node.mul h (Node.dropout_mask ~p:0.3 ~seed [| batch; dim |]) in
  let logits = Node.matmul ~trans_b:true h w2 in
  let loss = Node.cross_entropy ~logits ~labels in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[ w1; w2 ] in
  let rng = Rng.create seed in
  let feeds =
    [
      (w1, Tensor.xavier rng [| dim; dim |]);
      (w2, Tensor.xavier rng [| classes; dim |]);
      (x, Tensor.uniform rng [| batch; dim |] ~lo:(-1.0) ~hi:1.0);
      (labels, Tensor.init [| batch |] (fun _ -> float_of_int (Rng.int rng classes)));
    ]
  in
  (training.Echo_autodiff.Grad.graph, feeds)

(* Stash analysis *)

let test_stash_analysis () =
  let graph, _ = mlp_training ~batch:4 ~dim:8 ~classes:3 ~seed:1 in
  let stash = Stash.analyse graph in
  check_bool "nonempty" true (Stash.bytes stash > 0);
  List.iter
    (fun n ->
      check_bool "stashed nodes are forward" true (Node.region n = Node.Forward);
      check_bool "not params/inputs" true (not (Stash.is_persistent_input n));
      check_bool "has backward consumer" true
        (List.exists
           (fun c -> Node.region c = Node.Backward)
           (Graph.consumers graph (Node.id n))))
    (Stash.stashed_nodes stash)

let test_stash_availability () =
  let graph, _ = mlp_training ~batch:4 ~dim:8 ~classes:3 ~seed:1 in
  let stash = Stash.analyse graph in
  List.iter
    (fun n ->
      match Node.op n with
      | Op.Variable | Op.Placeholder ->
        check_bool "persistent available" true (Stash.available_for_backward stash n)
      | _ -> ())
    (Graph.nodes graph)

(* Rewrite *)

let outputs_equal g1 g2 ~feeds =
  let o1 = Interp.eval g1 ~feeds and o2 = Interp.eval g2 ~feeds in
  List.for_all2 Tensor.equal o1 o2

let test_mirror_preserves_semantics () =
  let graph, feeds = mlp_training ~batch:4 ~dim:8 ~classes:3 ~seed:2 in
  let stash = Stash.analyse graph in
  let rewritten = Rewrite.mirror graph ~mirror_ids:(Stash.stashed_ids stash) in
  Graph.validate rewritten;
  check_bool "bitwise equal" true (outputs_equal graph rewritten ~feeds)

let test_mirror_empty_is_identity_semantics () =
  let graph, feeds = mlp_training ~batch:2 ~dim:4 ~classes:2 ~seed:3 in
  let rewritten = Rewrite.mirror graph ~mirror_ids:Ids.Set.empty in
  check_bool "equal" true (outputs_equal graph rewritten ~feeds)

let test_mirror_rejects_backward_node () =
  let graph, _ = mlp_training ~batch:2 ~dim:4 ~classes:2 ~seed:4 in
  let bwd = List.hd (Graph.backward_nodes graph) in
  check_bool "raises" true
    (try
       ignore (Rewrite.mirror graph ~mirror_ids:(Ids.Set.singleton (Node.id bwd)));
       false
     with Invalid_argument _ -> true)

let test_mirror_rejects_variable () =
  let graph, _ = mlp_training ~batch:2 ~dim:4 ~classes:2 ~seed:5 in
  let v =
    List.find (fun n -> Node.op n = Op.Variable) (Graph.nodes graph)
  in
  check_bool "raises" true
    (try
       ignore (Rewrite.mirror graph ~mirror_ids:(Ids.Set.singleton (Node.id v)));
       false
     with Invalid_argument _ -> true)

let test_mirror_rejects_foreign_id () =
  let graph, _ = mlp_training ~batch:2 ~dim:4 ~classes:2 ~seed:6 in
  check_bool "raises" true
    (try
       ignore (Rewrite.mirror graph ~mirror_ids:(Ids.Set.singleton 99_999_999));
       false
     with Invalid_argument _ -> true)

let test_mirror_lazy_clones () =
  (* Mirroring a node with no backward consumers must create no clones. *)
  let x = Node.placeholder [| 4 |] in
  let a = Node.sigmoid x in
  let b = Node.neg a in
  let c = Node.mul ~region:Node.Backward b b in
  let g = Graph.create [ c ] in
  (* a has only forward consumers. *)
  let rewritten = Rewrite.mirror g ~mirror_ids:(Ids.Set.singleton (Node.id a)) in
  check_int "no clones" 0 (Rewrite.clone_count rewritten)

let test_mirror_shared_clone_once () =
  (* One mirrored node read by several backward consumers -> one clone. *)
  let x = Node.placeholder [| 4 |] in
  let f = Node.sigmoid x in
  let b1 = Node.neg ~region:Node.Backward f in
  let b2 = Node.sq ~region:Node.Backward f in
  let b3 = Node.mul ~region:Node.Backward f f in
  let g = Graph.create [ b1; b2; b3 ] in
  let rewritten = Rewrite.mirror g ~mirror_ids:(Ids.Set.singleton (Node.id f)) in
  check_int "single shared clone" 1 (Rewrite.clone_count rewritten)

let test_mirror_no_sharing_duplicates () =
  let x = Node.placeholder [| 4 |] in
  let f = Node.sigmoid x in
  let b1 = Node.neg ~region:Node.Backward f in
  let b2 = Node.sq ~region:Node.Backward f in
  let g = Graph.create [ b1; b2 ] in
  let rewritten =
    Rewrite.mirror ~share:false g ~mirror_ids:(Ids.Set.singleton (Node.id f))
  in
  check_int "one clone per consumer" 2 (Rewrite.clone_count rewritten)

let test_mirror_frees_stash () =
  (* Mirroring every stashed node frees those nodes, but their clones'
     inputs become force-stashed — exactly the transitive cost the Echo
     estimator accounts for. The original stash set itself must be gone. *)
  let graph, _ = mlp_training ~batch:16 ~dim:64 ~classes:10 ~seed:7 in
  let stash = Stash.analyse graph in
  let rewritten = Rewrite.mirror graph ~mirror_ids:(Stash.stashed_ids stash) in
  let stash' = Stash.analyse rewritten in
  Ids.Set.iter
    (fun id ->
      check_bool "originally stashed node is freed" true
        (not (Stash.is_stashed stash' id)))
    (Stash.stashed_ids stash)

let test_clone_hints_run_late () =
  let graph, _ = mlp_training ~batch:4 ~dim:8 ~classes:3 ~seed:8 in
  let stash = Stash.analyse graph in
  let rewritten = Rewrite.mirror graph ~mirror_ids:(Stash.stashed_ids stash) in
  (* every clone must be scheduled after the last forward node *)
  let sched = Graph.nodes rewritten in
  let last_fwd =
    List.fold_left
      (fun acc (i, n) -> if Node.region n = Node.Forward then i else acc)
      0
      (List.mapi (fun i n -> (i, n)) sched)
  in
  List.iteri
    (fun i n ->
      if Node.region n = Node.Backward && Node.op n = Op.Sigmoid then
        check_bool "clone in backward section" true (i > last_fwd))
    sched

(* Selection *)

let test_select_budget_zero () =
  let graph, _ = mlp_training ~batch:8 ~dim:32 ~classes:4 ~seed:9 in
  let sel = Select.echo dev graph ~overhead_budget:0.0 in
  check_bool "nothing selected without budget" true (Ids.Set.is_empty sel.Select.mirror_ids)

let test_select_budget_respected () =
  let graph, _ = mlp_training ~batch:8 ~dim:32 ~classes:4 ~seed:10 in
  let budget = 0.05 in
  let sel = Select.echo dev graph ~overhead_budget:budget in
  let t0 = Echo_gpusim.Costmodel.graph_time dev graph in
  check_bool "claimed cost within budget" true
    (sel.Select.claimed_cost_s <= (budget *. t0) +. 1e-12)

let test_select_only_recomputable_forward () =
  let graph, _ = mlp_training ~batch:8 ~dim:32 ~classes:4 ~seed:11 in
  let sel = Select.echo dev graph ~overhead_budget:0.5 in
  Ids.Set.iter
    (fun id ->
      let n = Graph.find graph id in
      check_bool "forward" true (Node.region n = Node.Forward);
      check_bool "recomputable" true (Op.is_recomputable (Node.op n)))
    sel.Select.mirror_ids

let test_select_claim_matches_measured_stash () =
  (* The estimator's claimed saving must equal the measured drop in stashed
     bytes after the rewrite. *)
  let graph, _ = mlp_training ~batch:16 ~dim:64 ~classes:10 ~seed:12 in
  let sel = Select.echo dev graph ~overhead_budget:0.2 in
  let before = (Memplan.plan graph).Memplan.stash_bytes in
  let rewritten = Rewrite.mirror graph ~mirror_ids:sel.Select.mirror_ids in
  let after = (Memplan.plan rewritten).Memplan.stash_bytes in
  check_int "claimed = measured" sel.Select.claimed_saving_bytes (before - after)

let test_select_negative_budget_raises () =
  let graph, _ = mlp_training ~batch:2 ~dim:4 ~classes:2 ~seed:13 in
  check_bool "raises" true
    (try
       ignore (Select.echo dev graph ~overhead_budget:(-0.1));
       false
     with Invalid_argument _ -> true)

let test_checkpoint_reduces_stash () =
  let graph, _ = mlp_training ~batch:16 ~dim:64 ~classes:10 ~seed:14 in
  let sel = Select.checkpoint_sqrt dev graph in
  let rewritten = Rewrite.mirror graph ~mirror_ids:sel.Select.mirror_ids in
  let before = (Memplan.plan graph).Memplan.stash_bytes in
  let after = (Memplan.plan rewritten).Memplan.stash_bytes in
  check_bool "stash shrinks" true (after < before)

let test_recompute_all_empties_stash () =
  let graph, _ = mlp_training ~batch:8 ~dim:16 ~classes:4 ~seed:15 in
  let sel = Select.recompute_all dev graph in
  let rewritten = Rewrite.mirror graph ~mirror_ids:sel.Select.mirror_ids in
  check_int "stash empty" 0 (Memplan.plan rewritten).Memplan.stash_bytes

let test_mirror_all_cheap_excludes_gemm () =
  let graph, _ = mlp_training ~batch:8 ~dim:16 ~classes:4 ~seed:16 in
  let sel = Select.mirror_all_cheap graph in
  Ids.Set.iter
    (fun id -> check_bool "cheap only" true (Op.is_cheap (Node.op (Graph.find graph id))))
    sel.Select.mirror_ids

let test_chain_span_fences () =
  (* A long recurrence of cheap ops: with a tight span cap the selection must
     leave periodic fences stashed. *)
  let x = Node.placeholder [| 64 |] in
  let rec unroll acc nodes k =
    if k = 0 then (acc, List.rev nodes)
    else begin
      let next = Node.sigmoid (Node.add acc x) in
      unroll next (next :: nodes) (k - 1)
    end
  in
  let final, states = unroll (Node.tanh_ x) [] 40 in
  (* backward reads every state *)
  let reads = List.map (fun s -> Node.sq ~region:Node.Backward s) states in
  let g = Graph.create (final :: reads) in
  let sel = Select.echo dev g ~overhead_budget:1.0 ~max_chain_span:8 in
  let rewritten = Rewrite.mirror g ~mirror_ids:sel.Select.mirror_ids in
  let remaining = (Memplan.plan rewritten).Memplan.stash_bytes in
  check_bool "some fences remain" true (remaining > 0);
  check_bool "most of the chain is mirrored" true
    (Ids.Set.cardinal sel.Select.mirror_ids > 20)

(* Pass *)

let policy_list =
  [
    Pass.Stash_all;
    Pass.Mirror_all_cheap;
    Pass.Checkpoint_sqrt;
    Pass.Echo { overhead_budget = 0.05 };
    Pass.Echo { overhead_budget = 0.3 };
    Pass.Echo_cheap_only { overhead_budget = 0.05 };
    Pass.Echo_no_sharing { overhead_budget = 0.05 };
    Pass.Echo_no_transitive { overhead_budget = 0.05 };
    Pass.Recompute_all;
  ]

let test_pass_all_policies_preserve_semantics () =
  let graph, feeds = mlp_training ~batch:8 ~dim:32 ~classes:5 ~seed:17 in
  let baseline = Interp.eval graph ~feeds in
  List.iter
    (fun policy ->
      let rewritten, _ = Pass.run ~device:dev policy graph in
      Graph.validate rewritten;
      let outputs = Interp.eval rewritten ~feeds in
      check_bool (Pass.policy_name policy) true
        (List.for_all2 Tensor.equal baseline outputs))
    policy_list

let test_pass_echo_never_regresses () =
  let graph, _ = mlp_training ~batch:16 ~dim:64 ~classes:8 ~seed:18 in
  List.iter
    (fun budget ->
      let _, report = Pass.run ~device:dev (Pass.Echo { overhead_budget = budget }) graph in
      check_bool "reduction >= 1" true (Pass.reduction report >= 1.0))
    [ 0.01; 0.05; 0.2; 0.5 ]

let test_pass_stash_all_identity () =
  let graph, _ = mlp_training ~batch:4 ~dim:8 ~classes:3 ~seed:19 in
  let rewritten, report = Pass.run ~device:dev Pass.Stash_all graph in
  check_bool "same graph" true (rewritten == graph);
  check_int "no mirrors" 0 report.Pass.mirrored_nodes;
  Alcotest.(check (float 1e-9)) "no overhead" 0.0 (Pass.overhead report)

let test_pass_no_sharing_costs_more () =
  let graph, _ = mlp_training ~batch:8 ~dim:32 ~classes:5 ~seed:20 in
  let _, shared = Pass.run ~device:dev (Pass.Echo_no_sharing { overhead_budget = 0.1 }) graph in
  check_bool "clones >= mirrored (duplication)" true
    (shared.Pass.clone_nodes >= shared.Pass.mirrored_nodes)

let test_pass_flops_ratio () =
  let graph, _ = mlp_training ~batch:8 ~dim:32 ~classes:5 ~seed:21 in
  let rewritten, _ = Pass.run ~device:dev Pass.Recompute_all graph in
  let ratio = Pass.recompute_flops_ratio rewritten ~original:graph in
  check_bool "positive extra flops" true (ratio > 0.0);
  check_bool "bounded by forward" true (ratio < 1.0)

let test_policy_names_unique () =
  let names = List.map Pass.policy_name policy_list in
  let sorted = List.sort_uniq compare names in
  check_int "unique" (List.length names) (List.length sorted)

(* Property: mirror rewrite preserves semantics for random mirror subsets of
   random training graphs. *)
let prop_random_mirror_semantics =
  QCheck.Test.make ~name:"random mirror sets preserve semantics" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let graph, feeds = mlp_training ~batch:3 ~dim:6 ~classes:3 ~seed in
      let stash = Stash.analyse graph in
      let rng = Rng.create (seed + 77) in
      let subset =
        List.fold_left
          (fun acc n ->
            if Rng.float rng < 0.5 && Op.is_recomputable (Node.op n) then
              Ids.Set.add (Node.id n) acc
            else acc)
          Ids.Set.empty (Stash.stashed_nodes stash)
      in
      let share = Rng.float rng < 0.5 in
      let rewritten = Rewrite.mirror ~share graph ~mirror_ids:subset in
      Graph.validate rewritten;
      outputs_equal graph rewritten ~feeds)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "stash",
      [ t "analysis" test_stash_analysis; t "availability" test_stash_availability ] );
    ( "rewrite",
      [
        t "preserves semantics" test_mirror_preserves_semantics;
        t "empty set is identity" test_mirror_empty_is_identity_semantics;
        t "rejects backward node" test_mirror_rejects_backward_node;
        t "rejects variable" test_mirror_rejects_variable;
        t "rejects foreign id" test_mirror_rejects_foreign_id;
        t "lazy clones" test_mirror_lazy_clones;
        t "shared clone once" test_mirror_shared_clone_once;
        t "no-sharing duplicates" test_mirror_no_sharing_duplicates;
        t "frees stash" test_mirror_frees_stash;
        t "clone hints run late" test_clone_hints_run_late;
        QCheck_alcotest.to_alcotest prop_random_mirror_semantics;
      ] );
    ( "select",
      [
        t "budget zero" test_select_budget_zero;
        t "budget respected" test_select_budget_respected;
        t "only recomputable forward" test_select_only_recomputable_forward;
        t "claim matches measured" test_select_claim_matches_measured_stash;
        t "negative budget" test_select_negative_budget_raises;
        t "checkpoint reduces stash" test_checkpoint_reduces_stash;
        t "recompute-all empties stash" test_recompute_all_empties_stash;
        t "mirror-all-cheap excludes gemm" test_mirror_all_cheap_excludes_gemm;
        t "chain span fences" test_chain_span_fences;
      ] );
    ( "pass",
      [
        t "all policies preserve semantics" test_pass_all_policies_preserve_semantics;
        t "echo never regresses" test_pass_echo_never_regresses;
        t "stash-all identity" test_pass_stash_all_identity;
        t "no-sharing costs more" test_pass_no_sharing_costs_more;
        t "flops ratio" test_pass_flops_ratio;
        t "policy names unique" test_policy_names_unique;
      ] );
  ]
