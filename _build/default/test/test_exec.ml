(* Interpreter, liveness, memory planner and footprint tests. *)

open Echo_tensor
open Echo_ir
open Echo_exec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Interpreter *)

let test_interp_chain () =
  let x = Node.placeholder [| 2 |] in
  let y = Node.scale 2.0 (Node.add_scalar 1.0 x) in
  let g = Graph.create [ y ] in
  let out = Interp.eval g ~feeds:[ (x, Tensor.of_list1 [ 1.0; 2.0 ]) ] in
  check_bool "value" true (Tensor.equal (List.hd out) (Tensor.of_list1 [ 4.0; 6.0 ]))

let test_interp_missing_feed () =
  let x = Node.placeholder ~name:"data" [| 2 |] in
  let g = Graph.create [ Node.neg x ] in
  check_bool "raises named" true
    (try
       ignore (Interp.eval g ~feeds:[]);
       false
     with Interp.Missing_feed msg -> String.length msg > 0)

let test_interp_feed_shape_checked () =
  let x = Node.placeholder [| 2 |] in
  let g = Graph.create [ Node.neg x ] in
  check_bool "raises" true
    (try
       ignore (Interp.eval g ~feeds:[ (x, Tensor.zeros [| 3 |]) ]);
       false
     with Invalid_argument _ -> true)

let test_interp_leaves () =
  let z = Node.zeros [| 2; 2 |] in
  let c = Node.const_fill 3.0 [| 2; 2 |] in
  let g = Graph.create [ Node.add z c ] in
  let out = List.hd (Interp.eval g ~feeds:[]) in
  check_bool "filled" true (Tensor.equal out (Tensor.full [| 2; 2 |] 3.0))

let test_interp_deterministic_dropout () =
  let m = Node.dropout_mask ~p:0.5 ~seed:3 [| 16 |] in
  let g = Graph.create [ m ] in
  let a = List.hd (Interp.eval g ~feeds:[]) in
  let b = List.hd (Interp.eval g ~feeds:[]) in
  check_bool "same mask across evals" true (Tensor.equal a b)

let test_eval_scalar () =
  let x = Node.placeholder [| 3 |] in
  let s = Node.reduce_sum ~axis:0 ~keepdims:false x in
  let g = Graph.create [ s ] in
  Alcotest.(check (float 1e-12)) "sum" 6.0
    (Interp.eval_scalar g ~feeds:[ (x, Tensor.of_list1 [ 1.; 2.; 3. ]) ])

(* Liveness *)

let test_liveness_chain () =
  let x = Node.placeholder [| 4 |] in
  let a = Node.neg x in
  let b = Node.sq a in
  let c = Node.exp_ b in
  let g = Graph.create [ c ] in
  let live = Liveness.analyse g in
  let itv_a = Liveness.interval live (Node.id a) in
  check_int "a dies at b" 2 itv_a.Liveness.last_step;
  let itv_c = Liveness.interval live (Node.id c) in
  check_bool "output lives to end" true (itv_c.Liveness.last_step = max_int);
  check_bool "placeholder persistent" true (Liveness.is_persistent x);
  check_bool "interior transient" true (not (Liveness.is_persistent a))

let test_liveness_stash () =
  let x = Node.placeholder [| 4 |] in
  let f = Node.sigmoid x in
  let b = Node.mul ~region:Node.Backward f f in
  let g = Graph.create [ b ] in
  let live = Liveness.analyse g in
  check_bool "f crosses into backward" true
    (Liveness.crosses_into_backward live g (Node.id f));
  check_int "stash bytes" (Node.size_bytes f) (Liveness.stash_bytes live g)

let test_liveness_dying_at () =
  let x = Node.placeholder [| 4 |] in
  let a = Node.neg x in
  let b = Node.sq a in
  let g = Graph.create [ b ] in
  let live = Liveness.analyse g in
  let dying = Liveness.dying_at live 2 in
  check_int "a dies when b runs" 1 (List.length dying)

(* Memory planner *)

(* A chain of same-size elementwise nodes: with in-place, the whole chain
   runs in ONE buffer; without in-place but with reuse, two. *)
let test_plan_chain_inplace () =
  let x = Node.placeholder [| 256 |] in
  let rec extend acc k = if k = 0 then acc else extend (Node.sq acc) (k - 1) in
  let out = extend (Node.neg x) 10 in
  let g = Graph.create [ out ] in
  let r = Memplan.plan g in
  let persistent = Node.size_bytes x in
  check_int "one live transient buffer" (persistent + 1024) r.Memplan.live_peak_bytes;
  let r' = Memplan.plan ~inplace:false g in
  check_int "two without in-place" (persistent + 2048) r'.Memplan.live_peak_bytes

let test_plan_no_reuse_worst_case () =
  let x = Node.placeholder [| 256 |] in
  let rec extend acc k = if k = 0 then acc else extend (Node.sq acc) (k - 1) in
  let out = extend (Node.neg x) 4 in
  let g = Graph.create [ out ] in
  let r = Memplan.plan ~reuse:false ~inplace:false g in
  (* 5 transient nodes, every allocation fresh *)
  check_int "arena = all transients" (Node.size_bytes x + (5 * 1024)) r.Memplan.arena_bytes

let test_plan_diamond () =
  let x = Node.placeholder [| 256 |] in
  let a = Node.neg x and b = Node.sq x in
  let c = Node.add a b in
  let g = Graph.create [ c ] in
  let r = Memplan.plan ~inplace:false g in
  (* While c executes, a, b and c's buffers all coexist. *)
  check_int "peak = persistent + 3 transients"
    (Node.size_bytes x + 3072) r.Memplan.live_peak_bytes

let test_plan_weights_counted () =
  let w = Node.variable [| 10; 10 |] in
  let x = Node.placeholder [| 2; 10 |] in
  let y = Node.matmul ~trans_b:true x w in
  let r = Memplan.plan (Graph.create [ y ]) in
  check_int "weights" 400 r.Memplan.weight_bytes;
  check_int "inputs" 80 r.Memplan.input_bytes

let test_plan_stash_counted () =
  let x = Node.placeholder [| 8 |] in
  let f = Node.sigmoid x in
  let loss = Node.reduce_sum ~axis:0 ~keepdims:false f in
  let training = Echo_autodiff.Grad.differentiate ~loss ~wrt:[] in
  ignore training;
  let dloss = Node.mul ~region:Node.Backward f f in
  let g = Graph.create [ loss; dloss ] in
  let r = Memplan.plan g in
  check_int "stash = f" (Node.size_bytes f) r.Memplan.stash_bytes

let test_plan_breakdown_complete () =
  let x = Node.placeholder [| 8 |] in
  let f = Node.sigmoid x in
  let b = Node.mul ~region:Node.Backward f f in
  let r = Memplan.plan (Graph.create [ b ]) in
  check_int "all categories present" Category.count (List.length r.Memplan.breakdown);
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 r.Memplan.breakdown in
  check_bool "breakdown sums to peak" true (total = r.Memplan.live_peak_bytes)

let test_plan_workspace () =
  let input = Node.placeholder [| 1; 1; 8; 8 |] in
  let kernel = Node.variable [| 1; 1; 3; 3 |] in
  let y = Node.conv2d ~stride:1 ~pad:0 ~input ~kernel in
  let r = Memplan.plan (Graph.create [ y ]) in
  check_bool "conv has workspace" true (r.Memplan.max_workspace_bytes > 0);
  check_int "im2col panel" (1 * 3 * 3 * 6 * 6 * 4) r.Memplan.max_workspace_bytes

let test_plan_backward_start () =
  let x = Node.placeholder [| 4 |] in
  let f = Node.sigmoid x in
  let b = Node.neg ~region:Node.Backward f in
  let r = Memplan.plan (Graph.create [ b ]) in
  check_bool "backward start recorded" true (r.Memplan.step_of_backward_start = Some 2)

let test_plan_live_peak_le_arena () =
  (* On any graph the ideal allocator can't need more than the pool. *)
  let x = Node.placeholder [| 16 |] in
  let a = Node.neg x in
  let b = Node.sigmoid a in
  let c = Node.add a b in
  let r = Memplan.plan (Graph.create [ c ]) in
  check_bool "live_peak <= arena" true (r.Memplan.live_peak_bytes <= r.Memplan.arena_bytes)

let test_inplace_not_for_stashed () =
  (* sigmoid's input is consumed later by a backward node, so the sigmoid
     cannot steal its buffer. *)
  let x = Node.placeholder [| 64 |] in
  let a = Node.neg x in
  let s = Node.sigmoid a in
  let b = Node.mul ~region:Node.Backward a s in
  let r = Memplan.plan (Graph.create [ b ]) in
  (* a (stashed) and s and b: at peak a, s live together. *)
  check_bool "a kept alive" true
    (r.Memplan.live_peak_bytes >= Node.size_bytes x + (2 * 256))

(* Footprint helpers *)

let test_footprint_optimizer_state () =
  let w = Node.variable [| 100 |] in
  let x = Node.placeholder [| 100 |] in
  let y = Node.add x w in
  let r = Memplan.plan (Graph.create [ y ]) in
  let base = Footprint.total_bytes r ~optimizer:Footprint.Sgd in
  check_int "momentum adds weights" (base + 400)
    (Footprint.total_bytes r ~optimizer:Footprint.Momentum);
  check_int "adam adds 2x" (base + 800)
    (Footprint.total_bytes r ~optimizer:Footprint.Adam);
  check_bool "fits" true (Footprint.fits r ~optimizer:Footprint.Sgd ~budget_bytes:(base + 1))

let test_footprint_human () =
  Alcotest.(check string) "bytes" "512 B" (Footprint.human 512);
  Alcotest.(check string) "kib" "1.5 KiB" (Footprint.human 1536);
  Alcotest.(check string) "mib" "2.0 MiB" (Footprint.human (2 * 1024 * 1024));
  Alcotest.(check string) "gib" "3.00 GiB" (Footprint.human (3 * 1024 * 1024 * 1024))

(* Property: planner invariants on random DAGs. *)
let prop_plan_invariants =
  QCheck.Test.make ~name:"planner invariants on random DAGs" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let pool = ref [ Node.placeholder [| 4; 4 |]; Node.variable [| 4; 4 |] ] in
      for _ = 1 to 25 do
        let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
        let n =
          match Rng.int rng 4 with
          | 0 -> Node.add (pick ()) (pick ())
          | 1 -> Node.tanh_ (pick ())
          | 2 -> Node.matmul (pick ()) (pick ())
          | _ -> Node.mul (pick ()) (pick ())
        in
        pool := n :: !pool
      done;
      let g = Graph.create [ List.hd !pool ] in
      let r = Memplan.plan g in
      let r_noreuse = Memplan.plan ~reuse:false ~inplace:false g in
      r.Memplan.live_peak_bytes <= r.Memplan.arena_bytes
      && r.Memplan.arena_bytes <= r_noreuse.Memplan.arena_bytes
      && r.Memplan.live_peak_bytes >= r.Memplan.weight_bytes + r.Memplan.input_bytes)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "interp",
      [
        t "chain" test_interp_chain;
        t "missing feed" test_interp_missing_feed;
        t "feed shape checked" test_interp_feed_shape_checked;
        t "generated leaves" test_interp_leaves;
        t "deterministic dropout" test_interp_deterministic_dropout;
        t "eval_scalar" test_eval_scalar;
      ] );
    ( "liveness",
      [
        t "chain intervals" test_liveness_chain;
        t "stash detection" test_liveness_stash;
        t "dying_at" test_liveness_dying_at;
      ] );
    ( "memplan",
      [
        t "chain in-place" test_plan_chain_inplace;
        t "no-reuse worst case" test_plan_no_reuse_worst_case;
        t "diamond" test_plan_diamond;
        t "weights counted" test_plan_weights_counted;
        t "stash counted" test_plan_stash_counted;
        t "breakdown complete" test_plan_breakdown_complete;
        t "conv workspace" test_plan_workspace;
        t "backward start" test_plan_backward_start;
        t "live peak <= arena" test_plan_live_peak_le_arena;
        t "in-place spares stashed" test_inplace_not_for_stashed;
        QCheck_alcotest.to_alcotest prop_plan_invariants;
      ] );
    ( "footprint",
      [
        t "optimizer state" test_footprint_optimizer_state;
        t "human sizes" test_footprint_human;
      ] );
  ]
