test/test_gpusim.ml: Alcotest Costmodel Device Echo_gpusim Echo_ir Float Graph List Node Op
