test/test_tensor.ml: Alcotest Array Echo_tensor Float QCheck QCheck_alcotest Rng Tensor
