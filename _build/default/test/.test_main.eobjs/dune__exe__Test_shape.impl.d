test/test_shape.ml: Alcotest Array Echo_tensor Float Printf QCheck QCheck_alcotest Rng Shape
