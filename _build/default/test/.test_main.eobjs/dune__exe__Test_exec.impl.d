test/test_exec.ml: Alcotest Category Echo_autodiff Echo_exec Echo_ir Echo_tensor Footprint Graph Interp List Liveness Memplan Node QCheck QCheck_alcotest Rng String Tensor
