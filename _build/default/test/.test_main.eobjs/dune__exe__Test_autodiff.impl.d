test/test_autodiff.ml: Alcotest Echo_autodiff Echo_exec Echo_ir Echo_models Echo_tensor Gradcheck Graph Hashtbl Interp Layer List Node Params Printf Recurrent Rng Shape Tensor
