test/test_models.ml: Alcotest Deepspeech Echo_exec Echo_ir Echo_models Echo_tensor Float Graph Language_model Layer List Model Nmt Node Option Params Recurrent Rng Shape String Tensor Transformer
