test/test_core.ml: Alcotest Echo_autodiff Echo_core Echo_exec Echo_gpusim Echo_ir Echo_tensor Graph Ids Interp List Memplan Node Op Pass QCheck QCheck_alcotest Rewrite Rng Select Stash Tensor
