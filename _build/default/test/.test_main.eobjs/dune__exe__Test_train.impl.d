test/test_train.ml: Alcotest Corpus Echo_autodiff Echo_exec Echo_ir Echo_tensor Echo_train Echo_workloads Float List Loop Node Optimizer Shape Tensor
