test/test_ir.ml: Alcotest Echo_ir Echo_tensor Graph List Node Op QCheck QCheck_alcotest Rng Shape String
