(* Model zoo tests: shapes, parameter counts, hand-computed cells, and
   forward execution on tiny configurations. *)

open Echo_tensor
open Echo_ir
open Echo_models

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* Recurrent cells *)

let test_gate_counts () =
  check_int "lstm" 4 (Recurrent.gates Recurrent.Lstm);
  check_int "peephole" 4 (Recurrent.gates Recurrent.Peephole);
  check_int "gru" 3 (Recurrent.gates Recurrent.Gru);
  check_int "vanilla" 1 (Recurrent.gates Recurrent.Vanilla)

let test_lstm_weights_shapes () =
  let params = Params.create ~seed:1 in
  let w = Recurrent.make_weights params "l" Recurrent.Lstm ~input_dim:10 ~hidden:16 in
  ignore w;
  check_int "three tensors" 3 (Params.count params);
  check_int "scalars" ((64 * 10) + (64 * 16) + 64) (Params.scalar_count params)

let test_peephole_weights () =
  let params = Params.create ~seed:21 in
  ignore (Recurrent.make_weights params "p" Recurrent.Peephole ~input_dim:3 ~hidden:4);
  (* three peephole diagonals on top of the usual three tensors *)
  check_int "six tensors" 6 (Params.count params)

let test_peephole_zero_weights_match_lstm () =
  (* With all-zero peephole diagonals the cell degenerates to a plain LSTM. *)
  let hidden = 3 in
  let params_p = Params.create ~seed:22 in
  let wp = Recurrent.make_weights params_p "c" Recurrent.Peephole ~input_dim:2 ~hidden in
  let params_l = Params.create ~seed:22 in
  let wl = Recurrent.make_weights params_l "c" Recurrent.Lstm ~input_dim:2 ~hidden in
  let x = Node.placeholder [| 1; 2 |] in
  let sp =
    Recurrent.step wp Recurrent.Peephole ~hidden ~x
      (Recurrent.zero_state Recurrent.Peephole ~batch:1 ~hidden)
  in
  let sl =
    Recurrent.step wl Recurrent.Lstm ~hidden ~x
      (Recurrent.zero_state Recurrent.Lstm ~batch:1 ~hidden)
  in
  let rng = Rng.create 23 in
  let xv = Tensor.uniform rng [| 1; 2 |] ~lo:(-1.0) ~hi:1.0 in
  let value weights_params state =
    let feeds =
      (x, xv)
      :: List.map
           (fun (n, v) ->
             let name = Node.name n in
             let is_peep =
               String.length name >= 2
               && String.sub name (String.length name - 2) 2 <> "_x"
               && (let l = String.length name in
                   l >= 4 && String.sub name (l - 4) 4 = ".p_i"
                   || (l >= 4 && String.sub name (l - 4) 4 = ".p_f")
                   || (l >= 4 && String.sub name (l - 4) 4 = ".p_o"))
             in
             if is_peep then (n, Tensor.zeros (Node.shape n)) else (n, v))
           (Params.bindings weights_params)
    in
    List.hd (Echo_exec.Interp.eval (Graph.create [ state.Recurrent.h ]) ~feeds)
  in
  check_bool "same hidden state" true
    (Tensor.approx_equal ~tol:1e-12 (value params_p sp) (value params_l sl))

(* Hand-computed single LSTM step with deterministic weights:
   all weights zero, bias b set so that gates are known constants. *)
let test_lstm_cell_hand () =
  let params = Params.create ~seed:2 in
  let hidden = 2 in
  let w = Recurrent.make_weights params "cell" Recurrent.Lstm ~input_dim:2 ~hidden in
  let x = Node.placeholder [| 1; 2 |] in
  let state = Recurrent.zero_state Recurrent.Lstm ~batch:1 ~hidden in
  let next = Recurrent.step w Recurrent.Lstm ~hidden ~x state in
  let c1 = Option.get next.Recurrent.c in
  let g = Graph.create [ next.Recurrent.h; c1 ] in
  (* Zero weights, bias = 0 everywhere: i=f=o=0.5, g~=tanh(0)=0 ->
     c' = 0.5*0 + 0.5*0 = 0, h' = 0.5*tanh(0) = 0. *)
  let zero_feeds =
    List.map (fun (n, _) -> (n, Tensor.zeros (Node.shape n))) (Params.bindings params)
  in
  let outs = Echo_exec.Interp.eval g ~feeds:((x, Tensor.ones [| 1; 2 |]) :: zero_feeds) in
  List.iter
    (fun t -> check_bool "all zero" true (Tensor.equal t (Tensor.zeros [| 1; 2 |])))
    outs

let test_lstm_cell_saturated_input_gate () =
  (* Bias drives i -> 1, f -> 0, g~ -> tanh(1), o -> 1:
     c' = tanh(bg), h' = tanh(c'). Uses bias layout [i; f; g; o]. *)
  let params = Params.create ~seed:3 in
  let hidden = 1 in
  let w = Recurrent.make_weights params "cell" Recurrent.Lstm ~input_dim:1 ~hidden in
  let x = Node.placeholder [| 1; 1 |] in
  let state = Recurrent.zero_state Recurrent.Lstm ~batch:1 ~hidden in
  let next = Recurrent.step w Recurrent.Lstm ~hidden ~x state in
  let g = Graph.create [ next.Recurrent.h ] in
  let big = 50.0 in
  let feeds =
    List.map
      (fun (n, _) ->
        if Node.name n = "cell.b" then
          (n, Tensor.of_list1 [ big; -.big; 1.0; big ])
        else (n, Tensor.zeros (Node.shape n)))
      (Params.bindings params)
  in
  let out = List.hd (Echo_exec.Interp.eval g ~feeds:((x, Tensor.zeros [| 1; 1 |]) :: feeds)) in
  check_float "h = tanh(tanh 1)" (tanh (tanh 1.0)) (Tensor.get1 out 0)

let test_unroll_shapes () =
  let params = Params.create ~seed:4 in
  let cfg =
    {
      Recurrent.kind = Recurrent.Lstm;
      input_dim = 6;
      hidden = 5;
      layers = 3;
      dropout = 0.0;
      seed = 0;
    }
  in
  let xs = List.init 4 (fun _ -> Node.placeholder [| 2; 6 |]) in
  let tops = Recurrent.unroll params "rnn" cfg ~batch:2 ~xs in
  check_int "one output per step" 4 (List.length tops);
  List.iter
    (fun h -> check_bool "B x H" true (Shape.equal (Node.shape h) [| 2; 5 |]))
    tops;
  (* 3 layers x 3 tensors *)
  check_int "params" 9 (Params.count params)

let test_unroll_weight_sharing () =
  (* Two steps, one layer: only three parameter tensors regardless of T. *)
  let params = Params.create ~seed:5 in
  let cfg =
    { Recurrent.kind = Recurrent.Gru; input_dim = 3; hidden = 3; layers = 1;
      dropout = 0.0; seed = 0 }
  in
  let xs = List.init 7 (fun _ -> Node.placeholder [| 1; 3 |]) in
  ignore (Recurrent.unroll params "rnn" cfg ~batch:1 ~xs);
  check_int "shared weights" 3 (Params.count params)

let test_dropout_layer_identity_when_zero () =
  let x = Node.placeholder [| 2; 2 |] in
  let y = Layer.dropout ~p:0.0 ~seed:1 x in
  check_bool "no node added" true (Node.equal x y)

let test_mean_of () =
  let a = Node.const_fill 2.0 Shape.scalar and b = Node.const_fill 4.0 Shape.scalar in
  let m = Layer.mean_of [ a; b ] in
  let v = Echo_exec.Interp.eval_scalar (Graph.create [ m ]) ~feeds:[] in
  check_float "mean" 3.0 v

(* Language model *)

let small_lm () =
  Language_model.build
    {
      Language_model.ptb_default with
      vocab = 50;
      embed = 8;
      hidden = 8;
      layers = 2;
      seq_len = 5;
      batch = 3;
      dropout = 0.1;
    }

let test_lm_structure () =
  let lm = small_lm () in
  check_bool "logits shape" true
    (Shape.equal (Node.shape lm.Language_model.logits) [| 15; 50 |]);
  check_bool "loss scalar" true
    (Shape.rank (Node.shape lm.Language_model.model.Model.loss) = 0);
  (* embed + proj.w + proj.b + 2 layers x 3 *)
  check_int "param tensors" 9 (Params.count lm.Language_model.model.Model.params)

let test_lm_forward_finite () =
  let lm = small_lm () in
  let rng = Rng.create 6 in
  let ids n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 50)) in
  let feeds =
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  let loss = Echo_exec.Interp.eval_scalar (Model.forward_graph lm.Language_model.model) ~feeds in
  check_bool "finite" true (Float.is_finite loss);
  (* fresh model ~ uniform predictions: loss near log vocab *)
  check_bool "near log V" true (Float.abs (loss -. log 50.0) < 1.0)

let test_lm_param_count_formula () =
  let lm = small_lm () in
  let v = 50 and e = 8 and h = 8 in
  let lstm_layer input_dim = (4 * h * input_dim) + (4 * h * h) + (4 * h) in
  let expected = (v * e) + (v * h) + v + lstm_layer e + lstm_layer h in
  check_int "scalar count" expected
    (Params.scalar_count lm.Language_model.model.Model.params)

(* NMT *)

let small_nmt attention =
  Nmt.build
    {
      Nmt.gnmt_like with
      src_vocab = 30;
      tgt_vocab = 40;
      embed = 6;
      hidden = 6;
      enc_layers = 2;
      dec_layers = 2;
      src_len = 4;
      tgt_len = 3;
      batch = 2;
      dropout = 0.0;
      attention;
    }

let test_nmt_structure () =
  let nmt = small_nmt true in
  check_int "one alpha per decoder step" 3 (List.length nmt.Nmt.attention_weights);
  List.iter
    (fun alpha ->
      check_bool "B x Tsrc" true (Shape.equal (Node.shape alpha) [| 2; 4 |]))
    nmt.Nmt.attention_weights;
  check_bool "loss scalar" true (Shape.rank (Node.shape nmt.Nmt.model.Model.loss) = 0)

let test_nmt_forward_and_alpha_rows () =
  let nmt = small_nmt true in
  let rng = Rng.create 7 in
  let ids bound n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng bound)) in
  let feeds =
    (nmt.Nmt.src_input, ids 30 nmt.Nmt.src_input)
    :: (nmt.Nmt.tgt_input, ids 40 nmt.Nmt.tgt_input)
    :: (nmt.Nmt.label_input, ids 40 nmt.Nmt.label_input)
    :: Params.bindings nmt.Nmt.model.Model.params
  in
  let g = Graph.create (nmt.Nmt.model.Model.loss :: nmt.Nmt.attention_weights) in
  match Echo_exec.Interp.eval g ~feeds with
  | [] -> Alcotest.fail "no outputs"
  | loss :: alphas ->
    check_bool "loss finite" true (Float.is_finite (Tensor.get1 loss 0));
    List.iter
      (fun alpha ->
        for r = 0 to 1 do
          check_float "attention rows sum to 1" 1.0
            (Tensor.sum (Tensor.slice ~axis:0 ~lo:r ~hi:(r + 1) alpha))
        done)
      alphas

let test_nmt_no_attention_smaller () =
  let with_attn = small_nmt true and without = small_nmt false in
  let n1 = Graph.node_count (Model.forward_graph with_attn.Nmt.model) in
  let n2 = Graph.node_count (Model.forward_graph without.Nmt.model) in
  check_bool "attention adds nodes" true (n1 > n2);
  check_int "no alphas" 0 (List.length without.Nmt.attention_weights)

(* DeepSpeech2 *)

let small_ds2 =
  {
    Deepspeech.ds2_like with
    batch = 2;
    time = 16;
    freq = 12;
    conv_channels = 3;
    rnn_hidden = 5;
    rnn_layers = 2;
    classes = 7;
    dropout = 0.0;
  }

let test_ds2_structure () =
  let ds2 = Deepspeech.build small_ds2 in
  (* two stride-2 convs with k=5,p=2: 16 -> 8 -> 4 *)
  check_int "frames" 4 ds2.Deepspeech.out_frames;
  check_bool "label input shape" true
    (Shape.equal (Node.shape ds2.Deepspeech.label_input) [| 4 * 2 |])

let test_ds2_forward_finite () =
  let ds2 = Deepspeech.build small_ds2 in
  let rng = Rng.create 8 in
  let spec = Tensor.normal rng [| 2; 1; 16; 12 |] ~mean:0.0 ~std:1.0 in
  let labels =
    Tensor.init [| 8 |] (fun _ -> float_of_int (Rng.int rng 7))
  in
  let feeds =
    (ds2.Deepspeech.spectrogram, spec)
    :: (ds2.Deepspeech.label_input, labels)
    :: Params.bindings ds2.Deepspeech.model.Model.params
  in
  let loss = Echo_exec.Interp.eval_scalar (Model.forward_graph ds2.Deepspeech.model) ~feeds in
  check_bool "finite" true (Float.is_finite loss)

let test_ds2_unidirectional_fewer_params () =
  let bi = Deepspeech.build small_ds2 in
  let uni = Deepspeech.build { small_ds2 with Deepspeech.bidirectional = false } in
  check_bool "bi has more params" true
    (Params.scalar_count bi.Deepspeech.model.Model.params
    > Params.scalar_count uni.Deepspeech.model.Model.params)

(* Transformer *)

let small_transformer =
  {
    Transformer.base_like with
    vocab = 40;
    seq_len = 6;
    batch = 2;
    d_model = 8;
    heads = 2;
    d_ff = 16;
    layers = 2;
    dropout = 0.0;
  }

let test_transformer_structure () =
  let tr = Transformer.build small_transformer in
  check_bool "token input (B*T)" true
    (Shape.equal (Node.shape tr.Transformer.token_input) [| 12 |]);
  check_bool "loss scalar" true
    (Shape.rank (Node.shape tr.Transformer.model.Model.loss) = 0)

let test_transformer_heads_divide () =
  check_bool "raises" true
    (try
       ignore (Transformer.build { small_transformer with Transformer.heads = 3 });
       false
     with Invalid_argument _ -> true)

let test_transformer_forward_finite () =
  let tr = Transformer.build small_transformer in
  let rng = Rng.create 9 in
  let ids n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 40)) in
  let feeds =
    (tr.Transformer.token_input, ids tr.Transformer.token_input)
    :: (tr.Transformer.label_input, ids tr.Transformer.label_input)
    :: Params.bindings tr.Transformer.model.Model.params
  in
  let loss = Echo_exec.Interp.eval_scalar (Model.forward_graph tr.Transformer.model) ~feeds in
  check_bool "finite" true (Float.is_finite loss)

(* Params registry *)

let test_params_bindings_order () =
  let params = Params.create ~seed:10 in
  let a = Params.zeros params "a" [| 1 |] in
  let b = Params.ones params "b" [| 2 |] in
  let names = List.map (fun (n, _) -> Node.name n) (Params.bindings params) in
  Alcotest.(check (list string)) "registration order" [ "a"; "b" ] names;
  check_bool "variables order" true
    (List.map Node.id (Params.variables params) = [ Node.id a; Node.id b ])

let test_params_xavier_bounds () =
  let params = Params.create ~seed:11 in
  let w = Params.xavier params "w" [| 10; 30 |] in
  let _, init = List.hd (Params.bindings params) in
  ignore w;
  let bound = sqrt (6.0 /. 40.0) in
  for i = 0 to Tensor.numel init - 1 do
    check_bool "within bound" true (Float.abs (Tensor.get1 init i) <= bound)
  done

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "recurrent",
      [
        t "gate counts" test_gate_counts;
        t "lstm weight shapes" test_lstm_weights_shapes;
        t "lstm zero-weight step" test_lstm_cell_hand;
        t "lstm saturated gates" test_lstm_cell_saturated_input_gate;
        t "unroll shapes" test_unroll_shapes;
        t "unroll weight sharing" test_unroll_weight_sharing;
        t "dropout p=0 identity" test_dropout_layer_identity_when_zero;
        t "mean_of" test_mean_of;
      ] );
    ( "language_model",
      [
        t "structure" test_lm_structure;
        t "forward finite" test_lm_forward_finite;
        t "param count formula" test_lm_param_count_formula;
      ] );
    ( "nmt",
      [
        t "structure" test_nmt_structure;
        t "forward + attention rows" test_nmt_forward_and_alpha_rows;
        t "no-attention variant" test_nmt_no_attention_smaller;
      ] );
    ( "deepspeech",
      [
        t "structure" test_ds2_structure;
        t "forward finite" test_ds2_forward_finite;
        t "unidirectional smaller" test_ds2_unidirectional_fewer_params;
      ] );
    ( "transformer",
      [
        t "structure" test_transformer_structure;
        t "heads must divide" test_transformer_heads_divide;
        t "forward finite" test_transformer_forward_finite;
      ] );
    ( "params",
      [
        t "bindings order" test_params_bindings_order;
        t "xavier bounds" test_params_xavier_bounds;
      ] );
  ]
