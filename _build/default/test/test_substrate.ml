(* The executor-validation substrate: liveness-validating execution, static
   offset assignment, and graph serialization. *)

open Echo_tensor
open Echo_ir
open Echo_exec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dev = Echo_gpusim.Device.titan_xp

let lm_setup () =
  let open Echo_models in
  let lm =
    Language_model.build
      {
        Language_model.ptb_default with
        vocab = 60;
        embed = 12;
        hidden = 12;
        layers = 2;
        seq_len = 6;
        batch = 3;
        dropout = 0.2;
      }
  in
  let rng = Rng.create 77 in
  let ids n = Tensor.init (Node.shape n) (fun _ -> float_of_int (Rng.int rng 60)) in
  let feeds =
    (lm.Language_model.token_input, ids lm.Language_model.token_input)
    :: (lm.Language_model.label_input, ids lm.Language_model.label_input)
    :: Params.bindings lm.Language_model.model.Model.params
  in
  ((Model.training lm.Language_model.model).Echo_autodiff.Grad.graph, feeds)

(* Arena executor *)

let test_arena_matches_interp () =
  let graph, feeds = lm_setup () in
  let a = Interp.eval graph ~feeds in
  let b = Arena_exec.eval graph ~feeds in
  check_bool "bit-identical under recycling" true (List.for_all2 Tensor.equal a b)

let test_arena_on_rewritten_graphs () =
  let graph, feeds = lm_setup () in
  let baseline = Interp.eval graph ~feeds in
  List.iter
    (fun policy ->
      let rewritten, _ = Echo_core.Pass.run ~device:dev policy graph in
      let outs = Arena_exec.eval rewritten ~feeds in
      check_bool
        (Echo_core.Pass.policy_name policy ^ " executable under recycling")
        true
        (List.for_all2 Tensor.equal baseline outs))
    [
      Echo_core.Pass.Checkpoint_sqrt;
      Echo_core.Pass.Echo { overhead_budget = 0.3 };
      Echo_core.Pass.Recompute_all;
    ]

let test_arena_detects_premature_free () =
  (* Craft a liveness violation by hand: feed Arena_exec a graph whose node
     is consumed after its computed death. Using the public API this cannot
     happen (that is the point) — instead we check that a value really is
     dropped: peak live count for a chain is 2 (current + next), far below
     the node count. *)
  let x = Node.placeholder [| 4 |] in
  let rec extend acc k = if k = 0 then acc else extend (Node.sq acc) (k - 1) in
  let out = extend (Node.neg x) 20 in
  let g = Graph.create [ out ] in
  let peak = Arena_exec.max_live_values g ~feeds:[ (x, Tensor.ones [| 4 |]) ] in
  check_bool "chain runs in O(1) values" true (peak <= 2)

let test_arena_echo_peak_below_baseline () =
  let graph, feeds = lm_setup () in
  let rewritten, _ =
    Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = 0.3 }) graph
  in
  let p0 = Arena_exec.max_live_values graph ~feeds in
  let p1 = Arena_exec.max_live_values rewritten ~feeds in
  (* value-count is a crude proxy for bytes, but recomputation should not
     blow up the number of simultaneously retained values *)
  check_bool "retained values comparable" true (p1 <= p0 * 2)

(* Static offset assignment *)

let test_assign_chain_two_buffers () =
  let x = Node.placeholder [| 256 |] in
  let rec extend acc k = if k = 0 then acc else extend (Node.sq acc) (k - 1) in
  let out = extend (Node.neg x) 10 in
  let plan = Assign.assign (Graph.create [ out ]) in
  Assign.validate plan;
  check_int "two slots' worth of arena" 2048 (Assign.arena_size plan)

let test_assign_diamond () =
  let x = Node.placeholder [| 256 |] in
  let a = Node.neg x and b = Node.sq x in
  let c = Node.add a b in
  let plan = Assign.assign (Graph.create [ c ]) in
  Assign.validate plan;
  check_int "three concurrent buffers" 3072 (Assign.arena_size plan)

let test_assign_validates_models () =
  let graph, _ = lm_setup () in
  let plan = Assign.assign graph in
  Assign.validate plan;
  let r = Memplan.plan ~inplace:false graph in
  let static_total = Assign.total_with_persistent plan graph in
  check_bool "static plan >= live peak" true
    (static_total >= r.Memplan.live_peak_bytes);
  check_bool "static plan <= no-reuse arena" true
    (static_total <= (Memplan.plan ~reuse:false ~inplace:false graph).Memplan.arena_bytes)

let test_assign_echo_graph_smaller () =
  let graph, _ = lm_setup () in
  let rewritten, _ =
    Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = 0.3 }) graph
  in
  let p0 = Assign.assign graph and p1 = Assign.assign rewritten in
  Assign.validate p0;
  Assign.validate p1;
  check_bool "echo shrinks the static arena" true
    (Assign.arena_size p1 <= Assign.arena_size p0)

let test_assign_hole_merging () =
  (* Two buffers freed back to back must merge into one hole a larger buffer
     can take: x -> a(256), b(256); both die at c = concat; then d(512)
     should fit into the merged hole. *)
  let x = Node.placeholder [| 64 |] in
  let a = Node.neg x and b = Node.sq x in
  let c = Node.concat ~axis:0 [ a; b ] in
  let d = Node.sq c in
  let e = Node.reduce_sum ~axis:0 ~keepdims:false d in
  let plan = Assign.assign (Graph.create [ e ]) in
  Assign.validate plan;
  (* a(256) + b(256) + c(512) live at step c; then d reuses a+b's merged
     hole: arena stays at 1024 + e *)
  check_bool "merged reuse keeps arena tight" true (Assign.arena_size plan <= 1028)

(* Serialization *)

let roundtrip graph = Serial.of_string (Serial.to_string graph)

let test_serial_roundtrip_structure () =
  let graph, _ = lm_setup () in
  let graph' = roundtrip graph in
  Graph.validate graph';
  check_int "node count" (Graph.node_count graph) (Graph.node_count graph');
  let ops g = List.map (fun n -> Op.to_string (Node.op n)) (Graph.nodes g) in
  Alcotest.(check (list string)) "op sequence identical" (ops graph) (ops graph')

let test_serial_roundtrip_semantics () =
  let graph, feeds = lm_setup () in
  let graph' = roundtrip graph in
  (* re-bind feeds to the reloaded placeholder/variable nodes by name *)
  let by_name =
    List.filter_map
      (fun n ->
        match Node.op n with
        | Op.Placeholder | Op.Variable -> Some (Node.name n, n)
        | _ -> None)
      (Graph.nodes graph')
  in
  let feeds' =
    List.map (fun (n, v) -> (List.assoc (Node.name n) by_name, v)) feeds
  in
  let a = Interp.eval graph ~feeds in
  let b = Interp.eval graph' ~feeds:feeds' in
  check_bool "bit-identical after reload" true (List.for_all2 Tensor.equal a b)

let test_serial_roundtrip_footprint () =
  let graph, _ = lm_setup () in
  let graph' = roundtrip graph in
  let r = Memplan.plan graph and r' = Memplan.plan graph' in
  check_int "live peak preserved" r.Memplan.live_peak_bytes r'.Memplan.live_peak_bytes;
  check_int "arena preserved" r.Memplan.arena_bytes r'.Memplan.arena_bytes

let test_serial_roundtrip_rewritten () =
  let graph, feeds = lm_setup () in
  let rewritten, _ =
    Echo_core.Pass.run ~device:dev (Echo_core.Pass.Echo { overhead_budget = 0.3 }) graph
  in
  let reloaded = roundtrip rewritten in
  let by_name =
    List.filter_map
      (fun n ->
        match Node.op n with
        | Op.Placeholder | Op.Variable -> Some (Node.name n, n)
        | _ -> None)
      (Graph.nodes reloaded)
  in
  let feeds' = List.map (fun (n, v) -> (List.assoc (Node.name n) by_name, v)) feeds in
  check_bool "rewritten graph survives reload" true
    (List.for_all2 Tensor.equal (Interp.eval rewritten ~feeds)
       (Interp.eval reloaded ~feeds:feeds'))

let test_serial_escaped_names () =
  let x = Node.placeholder ~name:"weird name 100%" [| 2 |] in
  let g = Graph.create [ Node.neg x ] in
  let g' = roundtrip g in
  check_bool "name survives escaping" true
    (List.exists (fun n -> Node.name n = "weird name 100%") (Graph.nodes g'))

let test_serial_rejects_garbage () =
  let bad text =
    try
      ignore (Serial.of_string text);
      false
    with Serial.Parse_error _ -> true
  in
  check_bool "empty" true (bad "");
  check_bool "bad header" true (bad "not-a-graph\n");
  check_bool "missing outputs" true (bad "echo-graph v1\n");
  check_bool "unknown op" true
    (bad "echo-graph v1\nnode 0 x fwd 0x0p+0 2 frobnicate ; \noutputs 0\n");
  check_bool "dangling input" true
    (bad "echo-graph v1\nnode 1 y fwd 0x0p+0 2 neg ; 0\noutputs 1\n")

let test_serial_file_roundtrip () =
  let x = Node.placeholder [| 3 |] in
  let g = Graph.create [ Node.sigmoid x ] in
  let path = Filename.temp_file "echo_graph" ".txt" in
  Serial.to_file g path;
  let g' = Serial.of_file path in
  Sys.remove path;
  check_int "nodes" 2 (Graph.node_count g')

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "arena_exec",
      [
        t "matches interp" test_arena_matches_interp;
        t "rewritten graphs executable" test_arena_on_rewritten_graphs;
        t "chain runs in O(1) values" test_arena_detects_premature_free;
        t "echo retained values bounded" test_arena_echo_peak_below_baseline;
      ] );
    ( "assign",
      [
        t "chain two buffers" test_assign_chain_two_buffers;
        t "diamond" test_assign_diamond;
        t "validates on models" test_assign_validates_models;
        t "echo shrinks arena" test_assign_echo_graph_smaller;
        t "hole merging" test_assign_hole_merging;
      ] );
    ( "serial",
      [
        t "roundtrip structure" test_serial_roundtrip_structure;
        t "roundtrip semantics" test_serial_roundtrip_semantics;
        t "roundtrip footprint" test_serial_roundtrip_footprint;
        t "roundtrip rewritten graph" test_serial_roundtrip_rewritten;
        t "escaped names" test_serial_escaped_names;
        t "rejects garbage" test_serial_rejects_garbage;
        t "file roundtrip" test_serial_file_roundtrip;
      ] );
  ]
